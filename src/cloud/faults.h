// Fault injection for the serving stack: deterministic, seedable traces of
// the cloud behaviours the paper's motivating scenario (§1, near-real-time
// photo filtering) must survive — spot preemptions, instance crash/restart
// cycles, and transient slowdown windows. A FaultSchedule is either replayed
// from an explicit event list (CSV) or generated from a statistical
// FaultModel; either way the same schedule always produces the same
// simulation, so failure experiments are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/annotations.h"
#include "common/threading.h"

namespace ccperf {
class Rng;
}

namespace ccperf::cloud {

/// What happens to an instance. The first three kinds are independent
/// per-instance faults; the last three are the instance-level projection of
/// correlated domain events (see cloud/fault_domains.h), kept distinct so a
/// trace records *why* an instance went down and reports can attribute loss
/// to the incident class.
enum class FaultKind {
  kPreemption,    // spot reclaim: the instance leaves and never returns
  kCrash,         // the instance dies and restarts after `duration_s`
  kSlowdown,      // transient contention: `slowdown_factor`x slower service
  kDomainOutage,  // whole-domain outage: down for `duration_s`, like a crash
  kReclaimWave,   // correlated spot reclaim: permanent, like a preemption
  kPartition,     // domain unreachable for `duration_s`: down AND in-flight
                  // work on the instance is lost (no requeue) because the
                  // partition severs it from the request plane
  kSilentCorruption,  // silent data corruption: the instance stays UP and
                      // keeps serving, but results produced during the
                      // `duration_s` residency window are wrong unless a
                      // detection policy (cloud/sdc.h) catches them
};

/// "preemption" / "crash" / "slowdown" / "domain-outage" / "reclaim-wave" /
/// "partition" / "silent-corruption".
const char* FaultKindName(FaultKind kind);

/// Permanent kinds take the instance away for good; `duration_s` is ignored.
[[nodiscard]] bool FaultKindIsPermanent(FaultKind kind);

/// One fault hitting one instance of the fleet. `instance` indexes the
/// fleet's expanded instance list (ResourceConfig order); events targeting
/// indices beyond the current fleet size are inert, so one schedule can be
/// replayed against fleets of different sizes.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  int instance = 0;
  double start_s = 0.0;
  double duration_s = 0.0;       // ignored for permanent kinds
  double slowdown_factor = 1.0;  // > 1, only meaningful for kSlowdown
};

/// Time-sorted fault trace.
struct FaultSchedule {
  std::vector<FaultEvent> events;

  /// Throws CheckError unless events are start-sorted with non-negative
  /// start/instance, positive durations for crash/slowdown, and slowdown
  /// factors > 1.
  void Validate() const;

  /// Events overlapping [t0, t1), clipped to the window and shifted to
  /// window-local time — the per-epoch view of a global schedule.
  [[nodiscard]] FaultSchedule Slice(double t0, double t1) const;

  [[nodiscard]] bool Empty() const { return events.empty(); }
};

/// Statistical fault generator; all rates are per instance-hour.
struct FaultModel {
  double preemption_rate = 0.0;
  double crash_rate = 0.0;
  double restart_s = 30.0;  // crash -> back up
  double slowdown_rate = 0.0;
  double slowdown_s = 60.0;
  double slowdown_factor = 2.0;
  // Silent corruption: onset rate per instance-hour (catalog column
  // sdc_rate_per_hour is the usual source) and the residency window — how
  // long a transient upset taints results before the state is naturally
  // rewritten (weights reloaded, job restarted).
  double sdc_rate = 0.0;
  double sdc_window_s = 120.0;
};

/// Draw a schedule for `instances` instances over `duration_s` seconds.
/// Per-instance independent Poisson processes; deterministic given `rng`.
FaultSchedule GenerateFaultSchedule(const FaultModel& model, int instances,
                                    double duration_s, Rng& rng);

/// Merge two valid schedules into one start-sorted trace (stable: on ties
/// `a`'s events precede `b`'s). Composes an independent per-instance trace
/// with a lowered correlated trace (cloud/fault_domains.h).
FaultSchedule MergeFaultSchedules(const FaultSchedule& a,
                                  const FaultSchedule& b);

/// CSV with header "kind,instance,start_s,duration_s,slowdown_factor".
/// Malformed rows, unknown kinds, negative timestamps, or out-of-order
/// start times throw CheckError naming the offending line — corrupted
/// traces must never silently mis-simulate. A stream that fails mid-read
/// (truncated file) throws as well.
FaultSchedule ParseFaultScheduleCsv(std::istream& in);
FaultSchedule ParseFaultScheduleCsv(const std::string& text);

/// Load a fault CSV from disk; errors (including parse errors) name the
/// path, and parse errors keep their line context.
FaultSchedule LoadFaultScheduleFromFile(const std::string& path);

/// Inverse of ParseFaultScheduleCsv (round-trips exactly enough to replay).
std::string FaultScheduleCsv(const FaultSchedule& schedule);

/// Thread-safe memoization of GenerateFaultSchedule: parallel sweeps that
/// replay the same (model, fleet size, horizon, seed) share one generated
/// schedule instead of regenerating it per task. Entries are never evicted,
/// so returned references stay valid for the cache's lifetime. Generation
/// is deterministic in the key, so racing misses on the same key converge
/// on identical schedules (first insert wins).
class FaultScheduleCache {
 public:
  FaultScheduleCache() = default;
  FaultScheduleCache(const FaultScheduleCache&) = delete;
  FaultScheduleCache& operator=(const FaultScheduleCache&) = delete;

  /// The schedule GenerateFaultSchedule produces for Rng(seed); generated
  /// at most once per distinct key (modulo concurrent first misses).
  const FaultSchedule& Get(const FaultModel& model, int instances,
                           double duration_s, std::uint64_t seed)
      CCPERF_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t Size() const CCPERF_EXCLUDES(mutex_);
  /// Lookups served from the cache / generations performed.
  [[nodiscard]] std::size_t Hits() const CCPERF_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t Misses() const CCPERF_EXCLUDES(mutex_);

 private:
  // Every FaultModel field participates in the key; two models that differ
  // only in an unused rate still hash apart, which is the conservative side.
  using Key = std::tuple<double, double, double, double, double, double,
                         double, double, int, double, std::uint64_t>;

  // std::map, not a hash map: iteration order never feeds numeric code
  // here, but the determinism lint bans hash containers in src/
  // wholesale (scripts/check_determinism_lint.sh).
  mutable Mutex mutex_;
  std::map<Key, std::unique_ptr<const FaultSchedule>> cache_
      CCPERF_GUARDED_BY(mutex_);
  std::size_t hits_ CCPERF_GUARDED_BY(mutex_) = 0;
  std::size_t misses_ CCPERF_GUARDED_BY(mutex_) = 0;
};

/// Availability/slowdown timeline of one instance under a schedule:
/// merged down intervals (crashes + preemption) and slowdown windows.
class InstanceTimeline {
 public:
  /// `horizon_s` bounds preemption intervals; schedule must be valid.
  InstanceTimeline(const FaultSchedule& schedule, int instance,
                   double horizon_s);

  /// True iff the instance is up at time `t`.
  [[nodiscard]] bool UpAt(double t) const;

  /// Earliest t' >= t at which the instance is up; +inf if it never
  /// returns (preempted).
  [[nodiscard]] double NextUpAt(double t) const;

  /// Start of the first down interval beginning after `t`; +inf if none.
  [[nodiscard]] double NextDownAfter(double t) const;

  /// Service-time multiplier at `t` (>= 1; max over overlapping windows).
  [[nodiscard]] double SlowdownAt(double t) const;

  /// True iff `t` falls inside a kPartition window of this instance. A
  /// partition is also a down interval, but the serving engine additionally
  /// treats work in flight at partition onset as lost (no requeue) — the
  /// isolated instance cannot hand its batch back to the request plane.
  [[nodiscard]] bool PartitionedAt(double t) const;

  /// True iff `t` falls inside a kSilentCorruption residency window. The
  /// instance is NOT down — it keeps serving, which is the whole hazard:
  /// results computed here are wrong unless a detection policy intervenes.
  [[nodiscard]] bool CorruptedAt(double t) const;

  /// Total seconds the instance is down within [0, horizon].
  [[nodiscard]] double DownSeconds() const;

 private:
  struct Interval {
    double start = 0.0;
    double end = 0.0;
  };
  struct SlowWindow {
    double start = 0.0;
    double end = 0.0;
    double factor = 1.0;
  };
  std::vector<Interval> down_;       // merged, sorted, disjoint
  std::vector<SlowWindow> slow_;     // sorted by start
  std::vector<Interval> partition_;  // merged kPartition windows
  std::vector<Interval> corrupt_;    // merged kSilentCorruption windows
  double horizon_s_ = 0.0;
};

}  // namespace ccperf::cloud
