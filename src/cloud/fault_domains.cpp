#include "cloud/fault_domains.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"

namespace ccperf::cloud {

namespace {

bool IsCorrelatedKind(FaultKind kind) {
  return kind == FaultKind::kDomainOutage ||
         kind == FaultKind::kReclaimWave || kind == FaultKind::kPartition;
}

/// Strict double parse, mirroring the fault-schedule CSV rules.
double ParseDoubleCell(const std::string& cell, const char* what) {
  const auto first = cell.find_first_not_of(" \t\r");
  CCPERF_CHECK(first != std::string::npos, "empty ", what, " cell");
  const auto last = cell.find_last_not_of(" \t\r");
  const std::string body = cell.substr(first, last - first + 1);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(body.c_str(), &end);
  CCPERF_CHECK(end == body.c_str() + body.size() && errno == 0,
               "malformed ", what, " value '", cell, "'");
  CCPERF_CHECK(std::isfinite(value), what, " must be finite, got '", cell,
               "'");
  return value;
}

std::uint64_t ParseSeedCell(const std::string& cell) {
  const auto first = cell.find_first_not_of(" \t\r");
  CCPERF_CHECK(first != std::string::npos, "empty seed cell");
  const auto last = cell.find_last_not_of(" \t\r");
  const std::string body = cell.substr(first, last - first + 1);
  CCPERF_CHECK(body.find_first_not_of("0123456789") == std::string::npos,
               "seed must be an unsigned integer, got '", cell, "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(body.c_str(), &end, 10);
  CCPERF_CHECK(end == body.c_str() + body.size() && errno == 0,
               "malformed seed value '", cell, "'");
  return static_cast<std::uint64_t>(value);
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

std::string Trimmed(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

FaultKind ParseCorrelatedKind(const std::string& cell) {
  const std::string name = Trimmed(cell);
  if (name == "domain-outage") return FaultKind::kDomainOutage;
  if (name == "reclaim-wave") return FaultKind::kReclaimWave;
  if (name == "partition") return FaultKind::kPartition;
  CCPERF_CHECK(false, "unknown correlated fault kind '", cell, "'");
  return FaultKind::kDomainOutage;  // unreachable
}

void ValidateCorrelatedEvent(const CorrelatedEvent& event, int domain_count) {
  CCPERF_CHECK(IsCorrelatedKind(event.kind), FaultKindName(event.kind),
               " is not a correlated (domain-level) fault kind");
  CCPERF_CHECK(event.domain >= 0 && event.domain < domain_count,
               "event domain ", event.domain,
               " outside topology with ", domain_count, " domains");
  CCPERF_CHECK(event.start_s >= 0.0 && std::isfinite(event.start_s),
               "event start must be finite and >= 0, got ", event.start_s);
  if (FaultKindIsPermanent(event.kind)) {
    CCPERF_CHECK(event.duration_s >= 0.0, FaultKindName(event.kind),
                 " duration must be >= 0 (it is ignored)");
    CCPERF_CHECK(event.fraction > 0.0 && event.fraction <= 1.0,
                 "reclaim fraction must be in (0, 1], got ", event.fraction);
  } else {
    CCPERF_CHECK(event.duration_s > 0.0 && std::isfinite(event.duration_s),
                 FaultKindName(event.kind),
                 " duration must be positive, got ", event.duration_s);
  }
}

}  // namespace

const char* DomainLevelName(DomainLevel level) {
  switch (level) {
    case DomainLevel::kRegion:
      return "region";
    case DomainLevel::kZone:
      return "zone";
    case DomainLevel::kPool:
      return "pool";
  }
  return "?";
}

const char* PlacementSpreadName(PlacementSpread spread) {
  switch (spread) {
    case PlacementSpread::kPack:
      return "pack";
    case PlacementSpread::kSpread:
      return "spread";
  }
  return "?";
}

void FaultDomainTopology::Validate() const {
  CCPERF_CHECK(!domains.empty(), "topology has no domains");
  for (std::size_t i = 0; i < domains.size(); ++i) {
    const Domain& d = domains[i];
    CCPERF_CHECK(!d.name.empty(), "domain ", i, " has an empty name");
    if (d.level == DomainLevel::kRegion) {
      CCPERF_CHECK(d.parent == -1, "region '", d.name,
                   "' must be a root (parent -1), got parent ", d.parent);
    } else {
      CCPERF_CHECK(d.parent >= 0 && static_cast<std::size_t>(d.parent) < i,
                   DomainLevelName(d.level), " '", d.name,
                   "' needs a parent that precedes it, got ", d.parent);
      const DomainLevel expected = d.level == DomainLevel::kZone
                                       ? DomainLevel::kRegion
                                       : DomainLevel::kZone;
      const Domain& parent = domains[static_cast<std::size_t>(d.parent)];
      CCPERF_CHECK(parent.level == expected, DomainLevelName(d.level), " '",
                   d.name, "' parent '", parent.name, "' must be a ",
                   DomainLevelName(expected));
    }
  }
  for (std::size_t i = 0; i < instance_domain.size(); ++i) {
    const int d = instance_domain[i];
    CCPERF_CHECK(d >= 0 && static_cast<std::size_t>(d) < domains.size(),
                 "instance ", i, " placed in nonexistent domain ", d);
    const Domain& pool = domains[static_cast<std::size_t>(d)];
    CCPERF_CHECK(pool.level == DomainLevel::kPool, "instance ", i,
                 " must be placed in a pool, got ",
                 DomainLevelName(pool.level), " '", pool.name, "'");
  }
}

std::vector<int> FaultDomainTopology::PoolIndices() const {
  std::vector<int> pools;
  for (std::size_t i = 0; i < domains.size(); ++i) {
    if (domains[i].level == DomainLevel::kPool) {
      pools.push_back(static_cast<int>(i));
    }
  }
  return pools;
}

bool FaultDomainTopology::Contains(int instance, int domain) const {
  CCPERF_CHECK(domain >= 0 &&
                   static_cast<std::size_t>(domain) < domains.size(),
               "domain index ", domain, " out of range");
  if (instance < 0 ||
      static_cast<std::size_t>(instance) >= instance_domain.size()) {
    return false;
  }
  for (int d = instance_domain[static_cast<std::size_t>(instance)]; d != -1;
       d = domains[static_cast<std::size_t>(d)].parent) {
    if (d == domain) return true;
  }
  return false;
}

std::vector<int> FaultDomainTopology::InstancesIn(int domain) const {
  std::vector<int> instances;
  for (std::size_t i = 0; i < instance_domain.size(); ++i) {
    if (Contains(static_cast<int>(i), domain)) {
      instances.push_back(static_cast<int>(i));
    }
  }
  return instances;
}

FaultDomainTopology FaultDomainTopology::Uniform(int regions,
                                                 int zones_per_region,
                                                 int pools_per_zone) {
  CCPERF_CHECK(regions >= 1 && zones_per_region >= 1 && pools_per_zone >= 1,
               "topology needs at least one region, zone, and pool; got ",
               regions, "x", zones_per_region, "x", pools_per_zone);
  FaultDomainTopology topo;
  for (int r = 0; r < regions; ++r) {
    const int region_index = static_cast<int>(topo.domains.size());
    topo.domains.push_back(
        {"r" + std::to_string(r), -1, DomainLevel::kRegion});
    for (int z = 0; z < zones_per_region; ++z) {
      const int zone_index = static_cast<int>(topo.domains.size());
      topo.domains.push_back({"r" + std::to_string(r) + "z" +
                                  std::to_string(z),
                              region_index, DomainLevel::kZone});
      for (int p = 0; p < pools_per_zone; ++p) {
        topo.domains.push_back({"r" + std::to_string(r) + "z" +
                                    std::to_string(z) + "p" +
                                    std::to_string(p),
                                zone_index, DomainLevel::kPool});
      }
    }
  }
  return topo;
}

void FaultDomainTopology::PlaceInstances(int count, PlacementSpread spread) {
  CCPERF_CHECK(count >= 0, "instance count must be >= 0, got ", count);
  const std::vector<int> pools = PoolIndices();
  CCPERF_CHECK(!pools.empty(), "cannot place instances: topology has no "
                               "pools");
  instance_domain.assign(static_cast<std::size_t>(count), pools[0]);
  if (spread == PlacementSpread::kSpread) {
    for (std::size_t i = 0; i < static_cast<std::size_t>(count); ++i) {
      instance_domain[i] = pools[i % pools.size()];
    }
  }
}

void CorrelatedSchedule::Validate(const FaultDomainTopology& topology) const {
  topology.Validate();
  const int domain_count = static_cast<int>(topology.domains.size());
  double previous = 0.0;
  for (const CorrelatedEvent& event : events) {
    ValidateCorrelatedEvent(event, domain_count);
    CCPERF_CHECK(event.start_s >= previous,
                 "correlated trace must be start-sorted: ", event.start_s,
                 " after ", previous);
    previous = event.start_s;
  }
}

std::vector<int> CorrelatedSchedule::UnreachableDomainsAt(double t) const {
  std::vector<int> unreachable;
  for (const CorrelatedEvent& event : events) {
    if (event.kind != FaultKind::kPartition) continue;
    if (t >= event.start_s && t < event.start_s + event.duration_s) {
      unreachable.push_back(event.domain);
    }
  }
  std::sort(unreachable.begin(), unreachable.end());
  unreachable.erase(std::unique(unreachable.begin(), unreachable.end()),
                    unreachable.end());
  return unreachable;
}

CorrelatedSchedule GenerateCorrelatedSchedule(
    const CorrelatedFaultModel& model, const FaultDomainTopology& topology,
    double duration_s, Rng& rng) {
  topology.Validate();
  CCPERF_CHECK(duration_s > 0.0, "duration must be positive");
  CCPERF_CHECK(model.outage_rate >= 0.0 && model.reclaim_wave_rate >= 0.0 &&
                   model.partition_rate >= 0.0,
               "correlated fault rates must be >= 0");
  CCPERF_CHECK(model.outage_s > 0.0, "outage duration must be positive");
  CCPERF_CHECK(model.partition_s > 0.0,
               "partition duration must be positive");
  CCPERF_CHECK(model.reclaim_fraction > 0.0 && model.reclaim_fraction <= 1.0,
               "reclaim fraction must be in (0, 1], got ",
               model.reclaim_fraction);

  CorrelatedSchedule schedule;
  const auto exponential = [&rng](double rate_per_hour) {
    return -std::log(1.0 - rng.NextDouble()) / (rate_per_hour / 3600.0);
  };
  // Domains in index order, streams in a fixed kind order per domain — the
  // draw sequence (and therefore the schedule) is a pure function of the
  // rng seed.
  for (std::size_t d = 0; d < topology.domains.size(); ++d) {
    const int domain = static_cast<int>(d);
    const DomainLevel level = topology.domains[d].level;
    if (level == DomainLevel::kZone) {
      if (model.outage_rate > 0.0) {
        for (double t = exponential(model.outage_rate); t < duration_s;
             t += model.outage_s + exponential(model.outage_rate)) {
          schedule.events.push_back({FaultKind::kDomainOutage, domain, t,
                                     model.outage_s, 1.0, 0});
        }
      }
      if (model.partition_rate > 0.0) {
        for (double t = exponential(model.partition_rate); t < duration_s;
             t += model.partition_s + exponential(model.partition_rate)) {
          schedule.events.push_back({FaultKind::kPartition, domain, t,
                                     model.partition_s, 1.0, 0});
        }
      }
    } else if (level == DomainLevel::kPool) {
      if (model.reclaim_wave_rate > 0.0) {
        // One wave per pool at most: reclaimed capacity never comes back,
        // so later waves on the same (already gutted) pool add nothing but
        // noise to the trace.
        const double t = exponential(model.reclaim_wave_rate);
        if (t < duration_s) {
          schedule.events.push_back({FaultKind::kReclaimWave, domain, t, 0.0,
                                     model.reclaim_fraction, rng.NextU64()});
        }
      }
    }
  }
  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const CorrelatedEvent& a, const CorrelatedEvent& b) {
                     if (a.start_s != b.start_s) return a.start_s < b.start_s;
                     return a.domain < b.domain;
                   });
  return schedule;
}

FaultSchedule LowerCorrelatedSchedule(const CorrelatedSchedule& schedule,
                                      const FaultDomainTopology& topology) {
  schedule.Validate(topology);
  FaultSchedule out;
  for (const CorrelatedEvent& event : schedule.events) {
    const std::vector<int> instances = topology.InstancesIn(event.domain);
    if (instances.empty()) continue;
    if (event.kind == FaultKind::kReclaimWave) {
      const int n = static_cast<int>(instances.size());
      const int victims = static_cast<int>(
          std::ceil(event.fraction * static_cast<double>(n)));
      // Victim choice is keyed on the event's own seed, not the generator
      // rng, so a schedule round-tripped through CSV (or replayed against a
      // different fleet size) lowers to the identical victim set.
      Rng victim_rng(event.seed);
      const std::vector<std::uint32_t> perm = victim_rng.Permutation(
          static_cast<std::uint32_t>(n));
      std::vector<int> chosen;
      chosen.reserve(static_cast<std::size_t>(victims));
      for (int v = 0; v < victims; ++v) {
        chosen.push_back(instances[perm[static_cast<std::size_t>(v)]]);
      }
      std::sort(chosen.begin(), chosen.end());
      for (const int instance : chosen) {
        out.events.push_back(
            {FaultKind::kReclaimWave, instance, event.start_s, 0.0, 1.0});
      }
    } else {
      for (const int instance : instances) {
        out.events.push_back({event.kind, instance, event.start_s,
                              event.duration_s, 1.0});
      }
    }
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.start_s != b.start_s) return a.start_s < b.start_s;
                     return a.instance < b.instance;
                   });
  return out;
}

CorrelatedSchedule ParseCorrelatedScheduleCsv(const std::string& text) {
  std::stringstream in(text);
  std::string line;
  CCPERF_CHECK(static_cast<bool>(std::getline(in, line)),
               "correlated fault CSV is empty");
  CCPERF_CHECK(Trimmed(line) == "kind,domain,start_s,duration_s,fraction,"
                                "seed",
               "unexpected correlated fault CSV header '", line, "'");
  CorrelatedSchedule schedule;
  std::size_t line_number = 1;
  double previous_start = 0.0;
  while (std::getline(in, line)) {
    ++line_number;
    if (Trimmed(line).empty()) continue;
    CorrelatedEvent event;
    try {
      const std::vector<std::string> cells = SplitCsvLine(line);
      CCPERF_CHECK(cells.size() == 6, "row needs 6 cells, got ",
                   cells.size());
      event.kind = ParseCorrelatedKind(cells[0]);
      const double domain = ParseDoubleCell(cells[1], "domain");
      CCPERF_CHECK(domain >= 0.0 && domain < 1e9 &&
                       domain == std::floor(domain),
                   "domain index must be a small non-negative integer, "
                   "got '",
                   cells[1], "'");
      event.domain = static_cast<int>(domain);
      event.start_s = ParseDoubleCell(cells[2], "start_s");
      event.duration_s = ParseDoubleCell(cells[3], "duration_s");
      event.fraction = ParseDoubleCell(cells[4], "fraction");
      event.seed = ParseSeedCell(cells[5]);
      ValidateCorrelatedEvent(event,
                              std::numeric_limits<int>::max());
      CCPERF_CHECK(event.start_s >= previous_start,
                   "events must be start-sorted: start_s ", event.start_s,
                   " is before ", previous_start);
    } catch (const CheckError& error) {
      CCPERF_CHECK(false, "correlated fault CSV line ", line_number, " ('",
                   Trimmed(line), "'): ", error.what());
    }
    previous_start = event.start_s;
    schedule.events.push_back(event);
  }
  return schedule;
}

std::string CorrelatedScheduleCsv(const CorrelatedSchedule& schedule) {
  std::ostringstream out;
  // max_digits10 so that parsing the CSV reproduces the schedule exactly.
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "kind,domain,start_s,duration_s,fraction,seed\n";
  for (const CorrelatedEvent& event : schedule.events) {
    out << FaultKindName(event.kind) << ',' << event.domain << ','
        << event.start_s << ',' << event.duration_s << ',' << event.fraction
        << ',' << event.seed << '\n';
  }
  return out.str();
}

}  // namespace ccperf::cloud
