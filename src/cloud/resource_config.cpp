#include "cloud/resource_config.h"

#include "common/check.h"

namespace ccperf::cloud {

int ResourceConfig::TotalInstances() const {
  int total = 0;
  for (const auto& [_, count] : instances) total += count;
  return total;
}

std::string ResourceConfig::ToString() const {
  if (instances.empty()) return "(empty)";
  std::string s;
  for (const auto& [type, count] : instances) {
    if (!s.empty()) s += "+";
    s += std::to_string(count) + "x" + type;
  }
  return s;
}

void ResourceConfig::Add(const std::string& type, int count) {
  CCPERF_CHECK(count >= 1, "count must be positive");
  for (auto& [existing, existing_count] : instances) {
    if (existing == type) {
      existing_count += count;
      return;
    }
  }
  instances.emplace_back(type, count);
}

UsdPerHour PricePerHour(const ResourceConfig& config,
                        const InstanceCatalog& catalog) {
  UsdPerHour price;
  for (const auto& [type, count] : config.instances) {
    price += catalog.Find(type).price_per_hour * count;
  }
  return price;
}

int TotalGpus(const ResourceConfig& config, const InstanceCatalog& catalog) {
  int gpus = 0;
  for (const auto& [type, count] : config.instances) {
    gpus += catalog.Find(type).gpus * count;
  }
  return gpus;
}

std::vector<ResourceConfig> EnumerateConfigs(
    std::span<const InstanceType> types, int max_per_type) {
  CCPERF_CHECK(!types.empty(), "no instance types to enumerate");
  CCPERF_CHECK(max_per_type >= 1, "max_per_type must be >= 1");
  std::vector<ResourceConfig> configs;
  std::vector<int> counts(types.size(), 0);
  for (;;) {
    // Odometer increment over per-type counts.
    std::size_t axis = 0;
    while (axis < counts.size() && ++counts[axis] > max_per_type) {
      counts[axis] = 0;
      ++axis;
    }
    if (axis == counts.size()) break;
    ResourceConfig config;
    for (std::size_t i = 0; i < types.size(); ++i) {
      if (counts[i] > 0) config.Add(types[i].name, counts[i]);
    }
    configs.push_back(std::move(config));
  }
  return configs;
}

}  // namespace ccperf::cloud
