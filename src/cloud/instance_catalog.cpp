#include "cloud/instance_catalog.h"

#include <cmath>

#include "common/check.h"

namespace ccperf::cloud {

const char* GpuKindName(GpuKind kind) {
  switch (kind) {
    case GpuKind::kK80: return "NVIDIA K80";
    case GpuKind::kM60: return "NVIDIA M60";
  }
  return "?";
}

double GpuSpec::Utilization(std::int64_t b) const {
  CCPERF_CHECK(b >= 1, "batch must be >= 1");
  const double u = util_min + (1.0 - util_min) *
                                  (1.0 - std::exp(-static_cast<double>(b) /
                                                  util_b0));
  return std::min(1.0, u);
}

InstanceCatalog::InstanceCatalog(std::vector<InstanceType> types,
                                 std::vector<GpuSpec> gpus)
    : types_(std::move(types)), gpus_(std::move(gpus)) {
  CCPERF_CHECK(!types_.empty(), "catalog needs at least one instance type");
  for (const auto& t : types_) {
    CCPERF_CHECK(t.gpus >= 1 && t.price_per_hour > UsdPerHour(0.0),
                 "invalid instance type ", t.name);
    CCPERF_CHECK(t.spot_price_per_hour >= UsdPerHour(0.0) &&
                     t.spot_price_per_hour <= t.price_per_hour,
                 "spot price of ", t.name,
                 " must be in [0, on-demand price]");
    CCPERF_CHECK(t.sdc_rate_per_hour >= RatePerHour(0.0) &&
                     std::isfinite(t.sdc_rate_per_hour.value()),
                 "SDC rate of ", t.name, " must be finite and >= 0");
  }
}

InstanceCatalog InstanceCatalog::AwsEc2() {
  // GPU device models. The M60's relative_speed is calibrated so the g3
  // family's CAR sits below the p2 family's by the paper's Fig. 12 ratio
  // (~0.35 vs ~0.57, i.e. g3/p2 ~ 0.61): with g3 prices 1.27x p2 per GPU,
  // the M60 must sustain ~2.05x the K80's per-GPU inference throughput.
  GpuSpec k80{.kind = GpuKind::kK80,
              .name = "NVIDIA K80",
              .cores = 2496,
              .mem_gb = 12.0,
              .relative_speed = 1.0,
              .util_min = 0.30,
              .util_b0 = 150.0,
              .kernel_launch = Seconds(1.5e-3),
              .max_batch = 2000};
  GpuSpec m60{.kind = GpuKind::kM60,
              .name = "NVIDIA M60",
              .cores = 2048,
              .mem_gb = 8.0,
              .relative_speed = 2.05,
              .util_min = 0.30,
              .util_b0 = 150.0,
              .kernel_launch = Seconds(1.2e-3),
              .max_batch = 1300};

  // The paper's Table 3 verbatim (Amazon EC2, Oregon region, 2020 prices).
  // Spot prices follow the region's typical ~70% discount off on-demand.
  // SDC onset rates scale with GPU count and board generation: the older,
  // hotter K80 boards (p2) at 3e-3 per GPU-hour, the M60s (g3) at 1e-3 —
  // inside the 1e-4..1e-2 per device-hour envelope fleet studies report.
  std::vector<InstanceType> types{
      {"p2.xlarge", "p2", 4, 1, 61.0, 12.0, UsdPerHour(0.90), GpuKind::kK80,
       UsdPerHour(0.270), RatePerHour(0.003)},
      {"p2.8xlarge", "p2", 32, 8, 488.0, 96.0, UsdPerHour(7.20),
       GpuKind::kK80, UsdPerHour(2.160), RatePerHour(0.024)},
      {"p2.16xlarge", "p2", 64, 16, 732.0, 192.0, UsdPerHour(14.40),
       GpuKind::kK80, UsdPerHour(4.320), RatePerHour(0.048)},
      {"g3.4xlarge", "g3", 16, 1, 122.0, 8.0, UsdPerHour(1.14), GpuKind::kM60,
       UsdPerHour(0.342), RatePerHour(0.001)},
      {"g3.8xlarge", "g3", 32, 2, 244.0, 16.0, UsdPerHour(2.28),
       GpuKind::kM60, UsdPerHour(0.684), RatePerHour(0.002)},
      {"g3.16xlarge", "g3", 64, 4, 488.0, 32.0, UsdPerHour(4.56),
       GpuKind::kM60, UsdPerHour(1.368), RatePerHour(0.004)},
  };
  return InstanceCatalog(std::move(types), {k80, m60});
}

const InstanceType& InstanceCatalog::Find(const std::string& name) const {
  for (const auto& t : types_) {
    if (t.name == name) return t;
  }
  CCPERF_CHECK(false, "unknown instance type '", name, "'");
}

bool InstanceCatalog::Contains(const std::string& name) const {
  for (const auto& t : types_) {
    if (t.name == name) return true;
  }
  return false;
}

std::vector<InstanceType> InstanceCatalog::Category(
    const std::string& category) const {
  std::vector<InstanceType> result;
  for (const auto& t : types_) {
    if (t.category == category) result.push_back(t);
  }
  return result;
}

const GpuSpec& InstanceCatalog::Gpu(GpuKind kind) const {
  for (const auto& g : gpus_) {
    if (g.kind == kind) return g;
  }
  CCPERF_CHECK(false, "no GPU spec for kind ", GpuKindName(kind));
}

}  // namespace ccperf::cloud
