#include "cloud/model_profile.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/flops.h"
#include "nn/model_zoo.h"

namespace ccperf::cloud {

double ModelProfile::TotalShare() const {
  double total = residual_share;
  for (const auto& [_, lp] : layers) total += lp.time_share;
  return total;
}

ModelProfile CaffeNetProfile() {
  // Calibrated against the paper's measurements:
  //  * 50,000 images in 19 min on p2.xlarge (Fig. 6)  -> 22.8 ms/image.
  //  * Layer time distribution (Fig. 3) reconciled with the per-layer
  //    pruning time ranges of Fig. 6 — see DESIGN.md §2 for why the paper's
  //    own 51%/16% split is arithmetically impossible and the compromise
  //    used here (conv1 35%, conv2 30%).
  //  * conv1's prunable fraction 0.35: stride-4 im2col dominates, so pruning
  //    barely helps (Fig. 6(a): 19 -> 16.6 min at 90%).
  //  * conv2 prunable 0.88 (Fig. 6(b): 19 -> ~14 min at 90%).
  ModelProfile p;
  p.model_name = "caffenet";
  p.ref_seconds_per_image = Seconds(19.0 * 60.0 / 50000.0);  // 22.8 ms
  // 5 conv + 3 fc + 3 pool + 2 LRN + softmax = 14 kernels per batch; at
  // 1.5 ms launch each this puts batch-1 latency at the paper's ~0.09 s.
  p.kernel_count = 14;
  p.layer_order = {"conv1", "conv2", "conv3", "conv4",
                   "conv5", "fc1",   "fc2",   "fc3"};
  p.layers["conv1"] = {0.350, 0.35, ""};
  p.layers["conv2"] = {0.300, 0.88, "conv1"};
  p.layers["conv3"] = {0.090, 0.85, "conv2"};
  p.layers["conv4"] = {0.100, 0.85, "conv3"};
  p.layers["conv5"] = {0.070, 0.85, "conv4"};
  p.layers["fc1"] = {0.025, 0.90, "conv5"};
  p.layers["fc2"] = {0.012, 0.90, "fc1"};
  p.layers["fc3"] = {0.004, 0.90, "fc2"};
  p.residual_share = 0.049;
  return p;
}

namespace {

/// GEMM efficiency heuristic: convolutions with small unfolded patches and
/// large strides use the device poorly (conv1-style layers), big stride-1
/// 3x3 stacks use it well.
double ConvEfficiency(const nn::ConvLayer& conv) {
  const auto& params = conv.Params();
  const double patch =
      static_cast<double>(conv.InChannels() / params.groups) *
      static_cast<double>(params.kernel * params.kernel);
  const double k_factor = patch / (patch + 1500.0);
  const double stride_factor =
      1.0 / (1.0 + 0.15 * static_cast<double>(params.stride - 1));
  return std::max(0.02, k_factor * stride_factor);
}

double PrunableFraction(const nn::ConvLayer& conv) {
  // First layers reading raw 3-channel images are im2col/memory bound:
  // sparsifying the tiny weight matrix barely moves their time.
  if (conv.InChannels() <= 3 && conv.Params().stride >= 4) return 0.35;
  if (conv.InChannels() <= 3) return 0.45;
  return 0.85;
}

}  // namespace

ModelProfile GenericProfile(const nn::Network& net,
                            Seconds ref_seconds_per_image) {
  CCPERF_CHECK(ref_seconds_per_image > Seconds(0.0),
               "reference time must be positive");
  const nn::NetworkCostReport report = nn::AnalyzeNetwork(net, 1);

  // Nearest upstream weighted layer per node (walk through weightless ones;
  // concat joins several branches -> no single upstream).
  std::vector<std::string> upstream_of_node(net.LayerCount());
  auto upstream_via = [&](std::size_t node) -> std::string {
    const auto& ins = net.NodeInputs(node);
    if (ins.size() != 1 || ins[0] < 0) return "";
    const auto src = static_cast<std::size_t>(ins[0]);
    if (net.LayerAt(src).HasWeights()) return net.LayerAt(src).Name();
    return upstream_of_node[src];
  };

  ModelProfile profile;
  profile.model_name = net.Name();
  profile.ref_seconds_per_image = ref_seconds_per_image;
  profile.kernel_count = 0;

  // Equivalent time units per layer: dense flops / efficiency.
  double weighted_units = 0.0;
  double residual_units = 0.0;
  std::vector<std::pair<std::string, double>> units;
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    const nn::Layer& layer = net.LayerAt(i);
    upstream_of_node[i] = upstream_via(i);
    const double density = std::max(1e-9, layer.WeightDensity());
    const double dense_flops = report.layers[i].cost.flops / density;
    switch (layer.Kind()) {
      case nn::LayerKind::kReLU:
      case nn::LayerKind::kDropout:
      case nn::LayerKind::kConcat:  // a memcpy the framework folds away
        continue;                   // no kernel launch of their own
      default:
        break;
    }
    ++profile.kernel_count;
    if (const auto* conv = dynamic_cast<const nn::ConvLayer*>(&layer)) {
      const double u = dense_flops / ConvEfficiency(*conv);
      units.emplace_back(layer.Name(), u);
      weighted_units += u;
      LayerProfile lp;
      lp.prunable_fraction = PrunableFraction(*conv);
      lp.upstream = upstream_of_node[i];
      profile.layers[layer.Name()] = lp;
      profile.layer_order.push_back(layer.Name());
    } else if (dynamic_cast<const nn::FcLayer*>(&layer) != nullptr) {
      const double u = dense_flops;  // dense GEMV runs near peak
      units.emplace_back(layer.Name(), u);
      weighted_units += u;
      LayerProfile lp;
      lp.prunable_fraction = 0.90;
      lp.upstream = upstream_of_node[i];
      profile.layers[layer.Name()] = lp;
      profile.layer_order.push_back(layer.Name());
    } else {
      residual_units += std::max(
          dense_flops, report.layers[i].cost.activation_bytes * 0.25);
    }
  }
  const double total_units = weighted_units + residual_units;
  CCPERF_CHECK(total_units > 0.0, "network ", net.Name(), " has no cost");
  for (const auto& [name, u] : units) {
    profile.layers[name].time_share = u / total_units;
  }
  profile.residual_share = residual_units / total_units;
  return profile;
}

ModelProfile GoogLeNetProfile() {
  // GoogLeNet per-layer measurements are only partially published (Fig. 7
  // shows six of the 57 conv layers), so the profile is derived from static
  // analysis with the same efficiency heuristic, anchored to the paper's
  // absolute numbers: 50,000 images in 13 min (Fig. 7) -> 15.6 ms/image.
  nn::ModelConfig config;
  config.weight_seed = 1;
  const nn::Network net = nn::BuildGoogLeNet(config);
  ModelProfile profile = GenericProfile(net, Seconds(13.0 * 60.0 / 50000.0));
  profile.model_name = "googlenet";

  // Anchor the two stem convolutions to the paper's measured pruning impact
  // (Fig. 7(a): conv1-7x7-s2 takes 13 -> 12.4 min at 90 % pruning, so its
  // share x prunable x 0.9 ~ 4.5 %; Fig. 7(b): conv2-3x3 takes 13 -> 9 min,
  // share ~ 33 %), rescaling the remaining layers to keep the total at 1.
  const double c1_share = 0.10;
  const double c2_share = 0.33;
  const double old_c1 = profile.layers.at("conv1-7x7-s2").time_share;
  const double old_c2 = profile.layers.at("conv2-3x3").time_share;
  const double rescale =
      (1.0 - c1_share - c2_share) /
      std::max(1e-9, profile.TotalShare() - old_c1 - old_c2);
  for (auto& [name, lp] : profile.layers) {
    lp.time_share *= rescale;
  }
  profile.residual_share *= rescale;
  profile.layers.at("conv1-7x7-s2").time_share = c1_share;
  profile.layers.at("conv2-3x3").time_share = c2_share;
  return profile;
}

}  // namespace ccperf::cloud
