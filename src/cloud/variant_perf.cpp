#include "cloud/variant_perf.h"

#include "common/check.h"
#include "tensor/sparse_dispatch.h"

namespace ccperf::cloud {

VariantPerf ComputeVariantPerf(const ModelProfile& profile,
                               const DensityMap& densities,
                               const std::string& label) {
  return ComputeVariantPerf(profile, densities, label, /*int8_enabled=*/false);
}

VariantPerf ComputeVariantPerf(const ModelProfile& profile,
                               const DensityMap& densities,
                               const std::string& label, bool int8_enabled) {
  double share = profile.residual_share;
  for (const auto& [name, lp] : profile.layers) {
    double density = 1.0;
    const auto it = densities.find(name);
    if (it != densities.end() && it->second.element < 1.0) {
      // Upstream filter removal compounds only into layers that are pruned
      // themselves: the pruner preferentially drops the weights reading the
      // dead channels, so unpruned layers keep their dense kernels (this is
      // what makes conv1 the least time-effective single layer to prune —
      // the paper's Observation 2 — while multi-layer plans are
      // super-additive — Observation 3).
      density = it->second.element * it->second.in_channel;
    }
    // The effective density maps to time through the measured dispatch:
    // above the sparse crossover the layer runs the dense kernel — float
    // (pruning buys no time; AnalyticSparseTimeFactor's plateau) or int8 at
    // kInt8TimeFactor — and below it, time tracks density unless the
    // quantized dense kernel is faster still (AnalyticQuantTimeFactor).
    const double density_factor = AnalyticQuantTimeFactor(density, int8_enabled);
    CCPERF_CHECK(density_factor >= 0.0 && density_factor <= 1.0,
                 "density factor out of range for ", name);
    share += lp.time_share *
             ((1.0 - lp.prunable_fraction) +
              lp.prunable_fraction * density_factor);
  }
  VariantPerf perf;
  perf.label = label;
  perf.ref_seconds_per_image = profile.ref_seconds_per_image * share;
  perf.kernel_count = profile.kernel_count;
  CCPERF_CHECK(perf.ref_seconds_per_image > Seconds(0.0),
               "non-positive variant time");
  return perf;
}

}  // namespace ccperf::cloud
