// Silent-data-corruption (SDC) policy layer.
//
// Fail-stop faults (cloud/faults.h) take instances away; silent corruption
// is the nastier cousin: the instance keeps serving and returns WRONG
// results. This header models the detection policies a deployment can buy
// and their closed-form cost/accuracy consequences, so the enumeration
// engine can put "how much checking" on the same cost × delivered-accuracy
// axes as instance type and batch size.
//
// Closed-form model (AssessSdc). Corruption onsets are Poisson with rate
// λ per instance-hour (catalog column sdc_rate_per_hour). A fraction p of
// onsets are transient — they taint a residency window of d seconds and
// clear on their own (bit flip in activations / packed buffers that gets
// rewritten); the rest are persistent — resident weight corruption that
// stays until something detects it or the run ends. Over a run of T
// seconds the fraction of work computed in a corrupted state is
//   f_transient  = λ·p·d / 3600                    (steady-state window mass)
//   f_persistent = λ·(1-p)·T / 7200                (onset uniform in [0, T];
//                                                   taints the remainder)
// Each policy then splits corrupted work into detected (redone: billed as
// time) and escaped (delivered as correct: billed as accuracy):
//   kOff          — SDC not modeled at all. The zero-cost zero-knowledge
//                   baseline; simulators short-circuit so results are
//                   bitwise identical to the pre-SDC code.
//   kNone         — modeled, no detection: everything corrupted escapes.
//   kAbft         — checksummed kernels (tensor/abft.h): coverage
//                   kAbftCoverage on BOTH transient and persistent
//                   corruption at kAbftTimeOverhead fractional cost.
//   kScrub        — periodic weight-CRC verification
//                   (nn::Network::VerifyIntegrity every scrub_interval_s):
//                   catches persistent corruption after interval/2 on
//                   average but is blind to transients; costs
//                   scrub_cost_s/scrub_interval_s.
//   kReexecSample — re-execute a sample_fraction of the work and compare:
//                   coverage = overhead = sample_fraction.
#pragma once

#include <string>

#include "common/units.h"

namespace ccperf::cloud {

/// Detection posture of a deployment.
enum class SdcPolicyKind { kOff, kNone, kAbft, kScrub, kReexecSample };

/// "off" / "none" / "abft" / "scrub" / "reexec-sample".
const char* SdcPolicyKindName(SdcPolicyKind kind);

/// Fraction of ABFT-checked corruptions detected. Calibrated by
/// tensor_abft_differential_test: the float checksum detects seeded
/// sign/exponent/high-mantissa flips at >= 99% (the escapes are flips whose
/// numeric effect is below rounding noise) and the int8 check is exact.
inline constexpr double kAbftCoverage = 0.995;

/// Fractional time cost of the checksummed kernels: one extra row per GEMM
/// (~1/M), the checksum product, and the column-sum verification — gated at
/// <= 15% on Table 1 shapes by bench_ext_sdc_frontier, typically ~4%.
inline constexpr double kAbftTimeOverhead = 0.04;

/// Fraction of corruption onsets that are transient (activation/buffer
/// upsets that clear when the state is rewritten) rather than persistent
/// (resident weight corruption). Fleet studies attribute the majority of
/// GPU SDC incidents to transient upsets.
inline constexpr double kTransientFraction = 0.7;

/// Residency window of a transient upset, seconds (FaultModel::sdc_window_s
/// default).
inline constexpr double kTransientWindowS = 120.0;

/// Top-1/Top-5 accuracy factor of work delivered under an ESCAPED
/// corruption, relative to clean work: CalibratedAccuracyModel's knee at
/// D = kSdcCorruptionDamage (multiplier 1/(1+0.55^2) = 0.768, top-1
/// steepness 1.15 → 0.738). Kept as constants so the evaluator does not
/// need the accuracy model per id.
inline constexpr double kCorruptTop1Factor = 0.738;
inline constexpr double kCorruptTop5Factor = 0.768;

/// One detection configuration.
struct SdcPolicy {
  SdcPolicyKind kind = SdcPolicyKind::kOff;
  /// kScrub: seconds between integrity scrubs and the cost of one scrub
  /// pass (a weight-CRC sweep is memory-bound and cheap).
  double scrub_interval_s = 300.0;
  double scrub_cost_s = 2.0;
  /// kReexecSample: fraction of work re-executed and compared.
  double sample_fraction = 0.1;

  /// Throws CheckError on non-finite / out-of-range knobs.
  void Validate() const;

  /// Stable one-token description for Describe()/fingerprints:
  /// "off", "none", "abft", "scrub@300", "reexec@0.1".
  [[nodiscard]] std::string Label() const;
};

/// What a policy costs and lets through over one run.
struct SdcAssessment {
  /// Fraction of the run's work computed in a corrupted state.
  double corruption_fraction = 0.0;
  /// Corrupted work caught by the policy (redone: billed into time/cost).
  double detected_fraction = 0.0;
  /// Corrupted work delivered as if correct (billed into accuracy).
  double escape_fraction = 0.0;
  /// Total fractional time overhead: detection machinery + redone work.
  /// Multiply modeled seconds (and therefore Eq. 3-4 cost) by
  /// (1 + time_overhead).
  double time_overhead = 0.0;
};

/// Evaluate the closed-form model above for a run of `run_seconds` on
/// instances with `sdc_rate` onsets. `transient_fraction` and
/// `transient_window` default to the calibrated constants. kOff returns
/// all zeros (SDC not modeled).
SdcAssessment AssessSdc(const SdcPolicy& policy, RatePerHour sdc_rate,
                        Seconds run_seconds,
                        double transient_fraction = kTransientFraction,
                        Seconds transient_window = Seconds(kTransientWindowS));

/// Delivered accuracy after escapes: acc·(1 − escape·(1 − corrupt_factor)).
double DeliveredAccuracy(double accuracy, double escape_fraction,
                         double corrupt_factor);

}  // namespace ccperf::cloud
