// VariantPerf: device-independent execution profile of one pruned variant,
// obtained by folding a DensityMap into a ModelProfile.
#pragma once

#include <string>

#include "cloud/density.h"
#include "cloud/model_profile.h"
#include "common/units.h"

namespace ccperf::cloud {

/// What the cloud simulator needs to know about a (model, degree-of-pruning)
/// pair: the per-image time on the reference device at full utilization and
/// the kernel count driving batch-1 latency.
struct VariantPerf {
  std::string label;
  Seconds ref_seconds_per_image;
  int kernel_count = 0;
};

/// Per-image reference time of the pruned variant:
///   t = t_ref * [ residual + sum_l share_l * ((1-pf_l) + pf_l * d_l) ]
/// where d_l = element_density_l * in_channel_density_l — sparse execution
/// removes only the prunable fraction of a layer's time, and upstream filter
/// removal shrinks this layer's reachable input (Li et al. semantics).
VariantPerf ComputeVariantPerf(const ModelProfile& profile,
                               const DensityMap& densities,
                               const std::string& label);

/// As above with the int8 knob: when `int8_enabled`, each layer's prunable
/// time maps through AnalyticQuantTimeFactor — dense-dispatched layers run
/// the quantized kernel at kInt8TimeFactor of the float time, while layers
/// pruned past the sparse crossover keep whichever path is faster. This is
/// how quantized (and sparse+quantized) variants enter the TAR/CAR
/// allocator and the frontier sweeps as first-class variants.
VariantPerf ComputeVariantPerf(const ModelProfile& profile,
                               const DensityMap& densities,
                               const std::string& label, bool int8_enabled);

}  // namespace ccperf::cloud
