// Reactive autoscaler: the *resource*-elasticity baseline the paper's
// related work (§2.2: PRESS, cost-aware provisioning, auto-scaling under
// deadlines) pursues, built on the serving simulator so it can be compared
// head-to-head with the paper's *accuracy*-elasticity knob.
//
// The autoscaler is deliberately classic: it observes the previous epoch's
// GPU utilization and scales the homogeneous fleet toward a target
// utilization, one epoch of lag — the lag is exactly what accuracy
// elasticity (instant variant switch) does not pay.
#pragma once

#include <vector>

#include "cloud/fault_domains.h"
#include "cloud/serving.h"
#include "common/units.h"

namespace ccperf::cloud {

/// Reactive scaling policy.
struct AutoscalePolicy {
  double target_utilization = 0.6;  // scale so next-epoch util ~ target
  int min_instances = 1;
  int max_instances = 16;
  /// Fault-aware extension (RunFaulted only): when the previous epoch
  /// dropped or missed more than this fraction of requests, step up even
  /// if utilization alone would not demand it.
  double miss_rate_step_up = 0.05;
};

/// Throws CheckError unless bounds are ordered, target utilization is in
/// (0, 1) and miss_rate_step_up is in (0, 1].
void ValidateAutoscalePolicy(const AutoscalePolicy& policy);

/// One epoch of an autoscaled run.
struct AutoscaleStep {
  int epoch = 0;
  int instances = 0;
  ServingReport report;
};

/// Whole-run summary.
struct AutoscaleResult {
  std::vector<AutoscaleStep> steps;
  Usd total_cost_usd;            // instance-hours billed across epochs
  double worst_p99_s = 0.0;
  bool always_stable = true;
  /// Fraction of all requests completed within their deadline (RunFaulted;
  /// 1.0 when no deadline is configured and nothing is dropped).
  double slo_compliance = 1.0;
};

/// Outcome of RankFaultedPolicies: every candidate's full run, plus the
/// winner (lowest total cost among candidates meeting the SLO floor;
/// ties break to the lowest index). best == -1 when no candidate
/// qualifies.
struct PolicyRanking {
  std::vector<AutoscaleResult> results;
  int best = -1;
};

/// Epoch-driven reactive autoscaler over a homogeneous fleet of one
/// instance type.
class Autoscaler {
 public:
  /// `simulator` must outlive the autoscaler.
  Autoscaler(const ServingSimulator& serving, std::string instance_type);

  /// Serve `epochs` epochs of `epoch_s` seconds each; `arrivals[e]` is the
  /// full arrival trace of epoch e in epoch-local time. Scaling decisions
  /// use the previous epoch's utilization (reactive, one epoch of lag).
  [[nodiscard]] AutoscaleResult Run(
      const std::vector<std::vector<double>>& arrivals, double epoch_s,
      const VariantPerf& perf, const AutoscalePolicy& policy,
      const ServingPolicy& serving_policy) const;

  /// Fault-aware variant: epochs are served with SimulateFaulted against
  /// `faults` (global time, sliced per epoch; instance indices address the
  /// fleet as sized that epoch). Scaling additionally reacts to failure
  /// signals: an epoch whose deadline-miss/drop rate exceeds
  /// `policy.miss_rate_step_up` forces at least one extra instance, and an
  /// unstable epoch still jumps to max. Still one epoch of reactive lag —
  /// the lag accuracy elasticity does not pay.
  ///
  /// With `checkpoint` set, every epoch runs checkpointed: dynamics and
  /// reports are unchanged, but snapshot overhead is billed into
  /// total_cost_usd and the aggregated accounting (plus the last epoch's
  /// restorable snapshot) lands in `checkpoint_stats` when provided.
  /// `redundancy` (replication/hedging) applies to every epoch.
  [[nodiscard]] AutoscaleResult RunFaulted(
      const std::vector<std::vector<double>>& arrivals, double epoch_s,
      const VariantPerf& perf, const AutoscalePolicy& policy,
      const ServingPolicy& serving_policy, const RetryPolicy& retry,
      const FaultSchedule& faults,
      const CheckpointPolicy* checkpoint = nullptr,
      CheckpointStats* checkpoint_stats = nullptr,
      const RedundancyPolicy& redundancy = {}) const;

  /// Domain-aware variant of RunFaulted: places `policy.max_instances`
  /// slots into `topology` pools per `spread`, lowers `correlated` to
  /// per-instance faults against that placement, merges them with the
  /// `independent` per-instance schedule, and runs the merged schedule.
  /// Instances placed outside the primary pool (the placement's first
  /// pool) bill an extra `cross_pool_premium_frac` of the instance price
  /// while in the active fleet — the cost of spreading (cross-zone data
  /// transfer, capacity reservations) that a packed placement never pays.
  [[nodiscard]] AutoscaleResult RunFaultedPlaced(
      const std::vector<std::vector<double>>& arrivals, double epoch_s,
      const VariantPerf& perf, const AutoscalePolicy& policy,
      const ServingPolicy& serving_policy, const RetryPolicy& retry,
      const FaultDomainTopology& topology,
      const CorrelatedSchedule& correlated, const FaultSchedule& independent,
      PlacementSpread spread, double cross_pool_premium_frac = 0.0,
      const RedundancyPolicy& redundancy = {},
      const CheckpointPolicy* checkpoint = nullptr,
      CheckpointStats* checkpoint_stats = nullptr) const;

  /// Evaluate every candidate policy with RunFaulted, fanned across the
  /// global thread pool (each run stays serial inside its task, so
  /// results[i] is bitwise identical to a standalone RunFaulted with
  /// policies[i]). The winner minimizes total_cost_usd among candidates
  /// with slo_compliance >= min_slo_compliance. Validation errors rethrow
  /// deterministically (lowest failing index) after the sweep.
  [[nodiscard]] PolicyRanking RankFaultedPolicies(
      const std::vector<std::vector<double>>& arrivals, double epoch_s,
      const VariantPerf& perf, const std::vector<AutoscalePolicy>& policies,
      const ServingPolicy& serving_policy, const RetryPolicy& retry,
      const FaultSchedule& faults, double min_slo_compliance = 0.0) const;

 private:
  const ServingSimulator& serving_;
  std::string instance_type_;
};

}  // namespace ccperf::cloud
