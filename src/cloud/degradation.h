// Accuracy-elastic graceful degradation: the paper's accuracy knob (pruned
// variants, §3) recast as a failure response. A DegradationController
// watches the serving loop's SLO signals (deadline-miss/drop rate,
// stability, utilization) and walks a ladder of increasingly pruned
// variants — degrading when the fleet is overloaded or shrunk by faults,
// and recovering with hysteresis so the fleet never flaps between rungs.
//
// Unlike resource elasticity (Autoscaler), switching a variant provisions
// nothing: the control interval can be much shorter than an instance
// boot, which is exactly the comparison bench_ext_fault_tolerance stages.
#pragma once

#include <span>
#include <vector>

#include "cloud/serving.h"

namespace ccperf::cloud {

/// One rung of the degradation ladder: a variant plus the accuracy it
/// serves at. Rung 0 is the most accurate; later rungs are more pruned
/// (faster, less accurate).
struct DegradationRung {
  VariantPerf perf;
  double accuracy = 0.0;  // in (0, 1]
};

/// When to degrade / recover. All signals come from the previous control
/// interval's ServingReport (reactive, like the autoscaler — but the
/// interval can be much shorter because nothing is provisioned).
struct DegradationPolicy {
  double degrade_miss_rate = 0.05;  // step down when miss rate >= this
  double recover_miss_rate = 0.01;  // calm interval: miss rate <= this ...
  double recover_headroom = 0.7;    // ... and utilization <= this
  int recover_intervals = 2;        // consecutive calm intervals to step up
};

/// Throws CheckError unless thresholds are ordered and in range.
void ValidateDegradationPolicy(const DegradationPolicy& policy);

/// One control interval of a degraded run.
struct DegradationStep {
  int interval = 0;
  int rung = 0;
  ServingReport report;
};

/// Whole-run summary.
struct DegradationResult {
  std::vector<DegradationStep> steps;
  double total_cost_usd = 0.0;
  double worst_p99_s = 0.0;
  /// Completion-weighted mean accuracy across intervals.
  double mean_accuracy = 0.0;
  /// Fraction of all requests completed within their deadline.
  double slo_compliance = 0.0;
  std::int64_t switches = 0;  // rung changes over the run
  bool always_stable = true;
};

/// Failure-aware controller over a *fixed* fleet: all elasticity comes from
/// the accuracy ladder.
class DegradationController {
 public:
  /// `serving` must outlive the controller; `fleet` is the fixed fleet.
  DegradationController(const ServingSimulator& serving,
                        ResourceConfig fleet);

  /// Serve `arrivals[i]` (interval-local time) for each control interval of
  /// `interval_s` seconds under `faults` (global time; sliced per
  /// interval). `ladder` is ordered most-accurate first and must not be
  /// empty. Deterministic.
  [[nodiscard]] DegradationResult Run(
      const std::vector<std::vector<double>>& arrivals, double interval_s,
      std::span<const DegradationRung> ladder,
      const DegradationPolicy& policy, const ServingPolicy& serving_policy,
      const RetryPolicy& retry, const FaultSchedule& faults) const;

 private:
  const ServingSimulator& serving_;
  ResourceConfig fleet_;
};

}  // namespace ccperf::cloud
