#include "cloud/checkpoint.h"

#include <algorithm>
#include <cmath>

#include "cloud/pricing.h"
#include "common/check.h"
#include "common/snapshot.h"

namespace ccperf::cloud {

namespace {

constexpr std::uint32_t kOfflineSnapshotTag = 0x4F46464Cu;  // 'OFFL'

/// Per-instance-hour fault density of a schedule (all kinds), the MTBF
/// input of the adaptive trigger. Zero for an empty schedule.
double FaultRatePerInstanceHour(const FaultSchedule& faults,
                                double duration_s, int instances) {
  if (faults.events.empty()) return 0.0;
  const double instance_hours =
      static_cast<double>(instances) * duration_s / 3600.0;
  return static_cast<double>(faults.events.size()) / instance_hours;
}

}  // namespace

const char* CheckpointTriggerName(CheckpointTrigger trigger) {
  switch (trigger) {
    case CheckpointTrigger::kPeriodic:
      return "periodic";
    case CheckpointTrigger::kOnPreemptionWarning:
      return "on-warning";
    case CheckpointTrigger::kAdaptive:
      return "adaptive";
  }
  return "?";
}

void ValidateCheckpointPolicy(const CheckpointPolicy& policy) {
  CCPERF_CHECK(policy.interval_s > 0.0 && std::isfinite(policy.interval_s),
               "checkpoint interval must be positive, got ",
               policy.interval_s);
  CCPERF_CHECK(policy.warning_lead_s >= 0.0 &&
                   std::isfinite(policy.warning_lead_s),
               "warning lead must be >= 0, got ", policy.warning_lead_s);
  CCPERF_CHECK(policy.snapshot_cost_s >= 0.0 &&
                   std::isfinite(policy.snapshot_cost_s),
               "snapshot cost must be >= 0, got ", policy.snapshot_cost_s);
  CCPERF_CHECK(policy.mirror_copies >= 1, "mirror copies must be >= 1, got ",
               policy.mirror_copies);
  CCPERF_CHECK(policy.mirror_cost_s >= 0.0 &&
                   std::isfinite(policy.mirror_cost_s),
               "mirror cost must be >= 0, got ", policy.mirror_cost_s);
}

double YoungInterval(double snapshot_cost_s, double mtbf_s) {
  CCPERF_CHECK(snapshot_cost_s > 0.0 && mtbf_s > 0.0,
               "Young's interval needs positive snapshot cost and MTBF");
  return std::sqrt(2.0 * snapshot_cost_s * mtbf_s);
}

std::vector<double> CheckpointInstants(const CheckpointPolicy& policy,
                                       const FaultSchedule& faults,
                                       double duration_s, int instances) {
  ValidateCheckpointPolicy(policy);
  CCPERF_CHECK(duration_s > 0.0, "duration must be positive");
  CCPERF_CHECK(instances >= 1, "need at least one instance");
  faults.Validate();

  std::vector<double> instants;
  const auto periodic = [&](double interval) {
    for (double t = interval; t < duration_s; t += interval) {
      instants.push_back(t);
    }
  };
  switch (policy.trigger) {
    case CheckpointTrigger::kPeriodic:
      periodic(policy.interval_s);
      break;
    case CheckpointTrigger::kOnPreemptionWarning:
      for (const FaultEvent& event : faults.events) {
        const double t = event.start_s - policy.warning_lead_s;
        if (t > 0.0 && t < duration_s) instants.push_back(t);
      }
      break;
    case CheckpointTrigger::kAdaptive: {
      const double rate =
          FaultRatePerInstanceHour(faults, duration_s, instances);
      double interval = policy.interval_s;
      if (rate > 0.0 && policy.snapshot_cost_s > 0.0) {
        interval = YoungInterval(policy.snapshot_cost_s, 3600.0 / rate);
      }
      // Never snapshot more often than a snapshot takes, never less than
      // once per run.
      interval = std::clamp(interval, std::max(policy.snapshot_cost_s, 1e-3),
                            duration_s);
      periodic(interval);
      break;
    }
  }
  std::sort(instants.begin(), instants.end());
  instants.erase(std::unique(instants.begin(), instants.end()),
                 instants.end());
  return instants;
}

SpotRunEstimate EstimateSpotRun(const CloudSimulator& sim,
                                const ResourceConfig& config,
                                const VariantPerf& perf, std::int64_t images,
                                const CheckpointPolicy& policy,
                                RatePerHour preemption_rate,
                                Seconds restart) {
  ValidateCheckpointPolicy(policy);
  const double preemption_rate_per_hour = preemption_rate.value();
  const double restart_s = restart.value();
  CCPERF_CHECK(preemption_rate_per_hour >= 0.0,
               "preemption rate must be >= 0");
  CCPERF_CHECK(restart_s >= 0.0, "restart time must be >= 0");

  const RunEstimate base = sim.Run(config, perf, images);
  const double base_seconds = base.seconds.value();
  SpotRunEstimate est;
  est.base_seconds = base.seconds;
  est.on_demand_cost_usd = base.cost_usd;

  // Resolve the interval: adaptive uses Young's optimum for the spot MTBF.
  // Computed on raw doubles in the exact expression order of the untyped
  // code, then stored into the typed fields.
  double interval_s = policy.interval_s;
  if (policy.trigger == CheckpointTrigger::kAdaptive &&
      preemption_rate_per_hour > 0.0 && policy.snapshot_cost_s > 0.0) {
    interval_s =
        YoungInterval(policy.snapshot_cost_s, 3600.0 / preemption_rate_per_hour);
  }
  interval_s = std::clamp(interval_s,
                          std::max(policy.snapshot_cost_s, 1e-3),
                          std::max(base_seconds, 1e-3));
  est.interval_s = Seconds(interval_s);

  // First-order expectation (Young/Daly): snapshots stretch the run by
  // c per interval; each preemption loses half an interval of recompute
  // plus the reprovisioning delay.
  const double snapshot_overhead_s =
      std::floor(base_seconds / interval_s) * policy.snapshot_cost_s;
  est.snapshot_overhead_s = Seconds(snapshot_overhead_s);
  const double productive_seconds = base_seconds + snapshot_overhead_s;
  est.expected_preemptions =
      preemption_rate_per_hour * (productive_seconds / 3600.0) *
      static_cast<double>(config.TotalInstances());
  const double expected_recompute_s =
      est.expected_preemptions * (interval_s / 2.0 + restart_s);
  est.expected_recompute_s = Seconds(expected_recompute_s);
  est.expected_seconds = Seconds(productive_seconds + expected_recompute_s);

  UsdPerHour spot_price;
  for (const auto& [type, count] : config.instances) {
    const InstanceType& t = sim.Catalog().Find(type);
    CCPERF_CHECK(t.spot_price_per_hour > UsdPerHour(0.0),
                 "instance type '", type, "' has no spot market");
    spot_price += t.spot_price_per_hour * count;
  }
  est.expected_spot_cost_usd = ProratedCost(est.expected_seconds, spot_price);
  return est;
}

// --- resumable offline run ---------------------------------------------------

ResumableOfflineRun::ResumableOfflineRun(const CloudSimulator& sim,
                                         const ResourceConfig& config,
                                         const VariantPerf& perf,
                                         std::int64_t images,
                                         std::int64_t batch)
    : total_images_(images), batch_(batch) {
  CCPERF_CHECK(images >= 1, "need at least one image");
  CCPERF_CHECK(batch >= 0, "batch must be >= 0");
  const RunEstimate estimate = sim.Run(config, perf, images);
  for (const InstanceRun& run : estimate.instances) {
    const InstanceType& type = sim.Catalog().Find(run.type);
    const GpuSpec& gpu = sim.Catalog().Gpu(type.gpu);
    Slot slot;
    slot.type = run.type;
    slot.target = run.images;
    if (run.images > 0) {
      const std::int64_t per_gpu =
          (run.images + type.gpus - 1) / static_cast<std::int64_t>(type.gpus);
      const std::int64_t b = batch > 0 ? std::min(batch, gpu.max_batch)
                                       : std::min(per_gpu, gpu.max_batch);
      slot.images_per_step = b * type.gpus;
      slot.step_seconds = sim.BatchSeconds(type, perf, b).value();
    }
    slots_.push_back(std::move(slot));
  }
}

void ResumableOfflineRun::AdvanceTo(double t_s) {
  CCPERF_CHECK(t_s >= elapsed_s_, "offline run time must advance: ", t_s,
               " < ", elapsed_s_);
  for (Slot& slot : slots_) {
    if (slot.target == 0 || slot.step_seconds <= 0.0) continue;
    const auto steps =
        static_cast<std::int64_t>(std::floor(t_s / slot.step_seconds));
    slot.done = std::min(slot.target, steps * slot.images_per_step);
  }
  elapsed_s_ = t_s;
}

bool ResumableOfflineRun::Done() const { return ImagesDone() == total_images_; }

std::int64_t ResumableOfflineRun::ImagesDone() const {
  std::int64_t done = 0;
  for (const Slot& slot : slots_) done += slot.done;
  return done;
}

double ResumableOfflineRun::TotalSeconds() const {
  double seconds = 0.0;
  for (const Slot& slot : slots_) {
    if (slot.target == 0) continue;
    // Last batch round may be partial; ceil to whole rounds bounds it.
    const std::int64_t rounds =
        (slot.target + slot.images_per_step - 1) / slot.images_per_step;
    seconds =
        std::max(seconds, static_cast<double>(rounds) * slot.step_seconds);
  }
  return seconds;
}

std::uint32_t ResumableOfflineRun::Fingerprint() const {
  SnapshotSectionWriter w;
  w.PutI64(total_images_);
  w.PutI64(batch_);
  for (const Slot& slot : slots_) {
    w.PutString(slot.type);
    w.PutI64(slot.target);
    w.PutI64(slot.images_per_step);
    w.PutF64(slot.step_seconds);
  }
  return Crc32(w.Bytes());
}

std::string ResumableOfflineRun::Checkpoint() const {
  SnapshotWriter writer(kOfflineSnapshotTag);
  SnapshotSectionWriter& meta = writer.AddSection("meta");
  meta.PutU32(Fingerprint());
  meta.PutF64(elapsed_s_);
  SnapshotSectionWriter& progress = writer.AddSection("progress");
  std::vector<std::int64_t> done;
  done.reserve(slots_.size());
  for (const Slot& slot : slots_) done.push_back(slot.done);
  progress.PutI64Vector(done);
  return writer.Serialize();
}

void ResumableOfflineRun::Restore(const std::string& snapshot) {
  const SnapshotReader reader =
      SnapshotReader::Parse(snapshot, kOfflineSnapshotTag);
  SnapshotSectionReader meta = reader.Section("meta");
  const std::uint32_t fingerprint = meta.TakeU32();
  CCPERF_CHECK(fingerprint == Fingerprint(),
               "offline-run snapshot does not match this run's "
               "(config, variant, workload)");
  const double elapsed = meta.TakeF64();
  meta.ExpectEnd();
  SnapshotSectionReader progress = reader.Section("progress");
  const std::vector<std::int64_t> done = progress.TakeI64Vector();
  progress.ExpectEnd();
  CCPERF_CHECK(done.size() == slots_.size(),
               "corrupt offline-run snapshot: ", done.size(),
               " progress slots for ", slots_.size(), " instances");
  CCPERF_CHECK(elapsed >= 0.0 && std::isfinite(elapsed),
               "corrupt offline-run snapshot: bad elapsed time");
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    CCPERF_CHECK(done[i] >= 0 && done[i] <= slots_[i].target,
                 "corrupt offline-run snapshot: progress ", done[i],
                 " outside [0, ", slots_[i].target, "]");
    slots_[i].done = done[i];
  }
  elapsed_s_ = elapsed;
}

void SnapshotVault::Put(const std::string& name, double watermark,
                        std::string snapshot) {
  // Domain -1 = "nowhere in particular": never named by a partition, so
  // untagged snapshots keep the pre-fault-domain semantics.
  PutMirrored(name, watermark, snapshot, {-1});
}

void SnapshotVault::PutMirrored(const std::string& name, double watermark,
                                const std::string& snapshot,
                                const std::vector<int>& domains) {
  CCPERF_CHECK(watermark >= 0.0, "snapshot watermark must be >= 0, got ",
               watermark);
  CCPERF_CHECK(!domains.empty(), "snapshot must land in at least one domain");
  {
    MutexLock lock(mutex_);
    std::map<int, Entry>& copies = entries_[name];
    for (const int domain : domains) {
      Entry& entry = copies[domain];
      if (entry.watermark > watermark && !entry.bytes.empty()) continue;
      entry.watermark = watermark;
      entry.bytes = snapshot;
    }
  }
  // Notify outside the lock so woken waiters can re-acquire immediately.
  published_.NotifyAll();
}

const SnapshotVault::Entry* SnapshotVault::BestReachableLocked(
    const std::string& name, const std::vector<int>& unreachable) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  const Entry* best = nullptr;
  for (const auto& [domain, entry] : it->second) {
    if (std::find(unreachable.begin(), unreachable.end(), domain) !=
        unreachable.end()) {
      continue;
    }
    // Strict > : on watermark ties the lowest domain index (first in map
    // order) wins, independent of publish order.
    if (best == nullptr || entry.watermark > best->watermark) {
      best = &entry;
    }
  }
  return best;
}

bool SnapshotVault::Contains(const std::string& name) const {
  MutexLock lock(mutex_);
  return entries_.find(name) != entries_.end();
}

std::string SnapshotVault::Get(const std::string& name) const {
  return GetReachable(name, {});
}

double SnapshotVault::Watermark(const std::string& name) const {
  return ReachableWatermark(name, {});
}

bool SnapshotVault::HasReachable(const std::string& name,
                                 const std::vector<int>& unreachable) const {
  MutexLock lock(mutex_);
  return BestReachableLocked(name, unreachable) != nullptr;
}

std::string SnapshotVault::GetReachable(
    const std::string& name, const std::vector<int>& unreachable) const {
  MutexLock lock(mutex_);
  const Entry* best = BestReachableLocked(name, unreachable);
  CCPERF_CHECK(best != nullptr, "no reachable snapshot for '", name,
               "' (published copies may all sit in partitioned domains)");
  return best->bytes;
}

double SnapshotVault::ReachableWatermark(
    const std::string& name, const std::vector<int>& unreachable) const {
  MutexLock lock(mutex_);
  const Entry* best = BestReachableLocked(name, unreachable);
  CCPERF_CHECK(best != nullptr, "no reachable snapshot for '", name,
               "' (published copies may all sit in partitioned domains)");
  return best->watermark;
}

std::size_t SnapshotVault::Size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

SnapshotVault::ScrubReport SnapshotVault::VerifyAllSections() const {
  MutexLock lock(mutex_);
  ScrubReport report;
  // std::map iteration gives (name, domain) order deterministically, so the
  // corrupted list is stable across runs regardless of publish order.
  for (const auto& [name, domains] : entries_) {
    for (const auto& [domain, entry] : domains) {
      ++report.copies_checked;
      if (!SnapshotIntact(entry.bytes)) {
        report.corrupted.push_back(CorruptCopy{name, domain});
      }
    }
  }
  return report;
}

bool SnapshotVault::WaitForSnapshot(const std::string& name,
                                    double min_watermark,
                                    double timeout_s) const {
  MutexLock lock(mutex_);
  return published_.WaitForSeconds(
      mutex_, timeout_s, [this, &name, min_watermark]() CCPERF_REQUIRES(mutex_) {
        const Entry* best = BestReachableLocked(name, {});
        return best != nullptr && best->watermark >= min_watermark;
      });
}

}  // namespace ccperf::cloud
