#include "cloud/sdc.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace ccperf::cloud {

const char* SdcPolicyKindName(SdcPolicyKind kind) {
  switch (kind) {
    case SdcPolicyKind::kOff: return "off";
    case SdcPolicyKind::kNone: return "none";
    case SdcPolicyKind::kAbft: return "abft";
    case SdcPolicyKind::kScrub: return "scrub";
    case SdcPolicyKind::kReexecSample: return "reexec-sample";
  }
  return "?";
}

void SdcPolicy::Validate() const {
  CCPERF_CHECK(std::isfinite(scrub_interval_s) && scrub_interval_s > 0.0,
               "scrub_interval_s must be finite and > 0, got ",
               scrub_interval_s);
  CCPERF_CHECK(std::isfinite(scrub_cost_s) && scrub_cost_s >= 0.0,
               "scrub_cost_s must be finite and >= 0, got ", scrub_cost_s);
  CCPERF_CHECK(scrub_cost_s < scrub_interval_s,
               "scrub_cost_s (", scrub_cost_s,
               ") must be below scrub_interval_s (", scrub_interval_s,
               ") or scrubbing consumes the whole run");
  CCPERF_CHECK(std::isfinite(sample_fraction) && sample_fraction >= 0.0 &&
                   sample_fraction <= 1.0,
               "sample_fraction must be in [0, 1], got ", sample_fraction);
}

std::string SdcPolicy::Label() const {
  std::ostringstream out;
  out << SdcPolicyKindName(kind);
  if (kind == SdcPolicyKind::kScrub) {
    out << "@" << scrub_interval_s;
  } else if (kind == SdcPolicyKind::kReexecSample) {
    out << "@" << sample_fraction;
  }
  return out.str();
}

SdcAssessment AssessSdc(const SdcPolicy& policy, RatePerHour sdc_rate,
                        Seconds run_seconds_q, double transient_fraction,
                        Seconds transient_window) {
  policy.Validate();
  const double sdc_rate_per_hour = sdc_rate.value();
  const double run_seconds = run_seconds_q.value();
  const double transient_window_s = transient_window.value();
  CCPERF_CHECK(std::isfinite(sdc_rate_per_hour) && sdc_rate_per_hour >= 0.0,
               "sdc_rate_per_hour must be finite and >= 0, got ",
               sdc_rate_per_hour);
  CCPERF_CHECK(std::isfinite(run_seconds) && run_seconds >= 0.0,
               "run_seconds must be finite and >= 0, got ", run_seconds);
  CCPERF_CHECK(transient_fraction >= 0.0 && transient_fraction <= 1.0,
               "transient_fraction must be in [0, 1], got ",
               transient_fraction);
  CCPERF_CHECK(std::isfinite(transient_window_s) && transient_window_s >= 0.0,
               "transient_window_s must be finite and >= 0, got ",
               transient_window_s);

  SdcAssessment out;
  if (policy.kind == SdcPolicyKind::kOff) return out;  // not modeled

  const double lambda = sdc_rate_per_hour;
  // Expected fraction of run time spent inside a transient residency
  // window: λ·p onsets per hour, each tainting transient_window_s seconds
  // (capped at the run itself — a short run can't host a full window).
  const double window = std::min(transient_window_s, run_seconds);
  const double f_transient =
      std::min(1.0, lambda * transient_fraction * window / 3600.0);
  // A persistent onset at uniform time taints the remainder of the run (or,
  // under scrubbing, at most half a scrub interval on average before the
  // CRC sweep catches it and the weights are reloaded).
  double persist_span = run_seconds / 2.0;
  double persist_caught_by_scrub = 0.0;
  if (policy.kind == SdcPolicyKind::kScrub) {
    const double scrub_span =
        std::min(policy.scrub_interval_s / 2.0, run_seconds / 2.0);
    persist_caught_by_scrub = persist_span - scrub_span;
    persist_span = scrub_span;
  }
  // λ(1-p)/3600 onsets per second of run, each tainting `persist_span`
  // seconds, gives corrupted-work fraction λ(1-p)·span/3600 (span <= T/2).
  const double f_persist =
      std::min(1.0, lambda * (1.0 - transient_fraction) * persist_span /
                        3600.0);
  const double f_scrub_repaired =
      std::min(1.0, lambda * (1.0 - transient_fraction) *
                        persist_caught_by_scrub / 3600.0);

  double coverage = 0.0;       // of still-live corrupted work
  double machinery_cost = 0.0; // fractional time cost of the detector
  switch (policy.kind) {
    case SdcPolicyKind::kOff:
      return out;
    case SdcPolicyKind::kNone:
      break;
    case SdcPolicyKind::kAbft:
      coverage = kAbftCoverage;
      machinery_cost = kAbftTimeOverhead;
      break;
    case SdcPolicyKind::kScrub:
      // The scrub itself only converts persistent corruption into
      // detected-and-repaired work (folded into persist_span above);
      // work inside the live windows still escapes.
      machinery_cost = policy.scrub_cost_s / policy.scrub_interval_s;
      break;
    case SdcPolicyKind::kReexecSample:
      coverage = policy.sample_fraction;
      machinery_cost = policy.sample_fraction;
      break;
  }

  // Transient and persistent exposure are each clamped above, but their sum
  // is the fraction of one run and cannot exceed it either.
  const double live = std::min(1.0, f_transient + f_persist);
  out.corruption_fraction = std::min(1.0, live + f_scrub_repaired);
  out.detected_fraction = std::min(1.0, live * coverage + f_scrub_repaired);
  out.escape_fraction = std::max(0.0, live * (1.0 - coverage));
  // Detected work is thrown away and redone, so it bills twice: once as the
  // wasted corrupted pass, once as the clean redo — plus the always-on
  // machinery.
  out.time_overhead = machinery_cost + out.detected_fraction;
  return out;
}

double DeliveredAccuracy(double accuracy, double escape_fraction,
                         double corrupt_factor) {
  CCPERF_CHECK(escape_fraction >= 0.0 && escape_fraction <= 1.0,
               "escape_fraction must be in [0, 1], got ", escape_fraction);
  CCPERF_CHECK(corrupt_factor >= 0.0 && corrupt_factor <= 1.0,
               "corrupt_factor must be in [0, 1], got ", corrupt_factor);
  return accuracy * (1.0 - escape_fraction * (1.0 - corrupt_factor));
}

}  // namespace ccperf::cloud
