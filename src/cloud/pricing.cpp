#include "cloud/pricing.h"

#include <cmath>

#include "common/check.h"

namespace ccperf::cloud {

Usd ProratedCost(Seconds duration, UsdPerHour price) {
  CCPERF_CHECK(duration.value() >= 0.0, "negative duration");
  CCPERF_CHECK(price.value() >= 0.0, "negative price");
  const double billed_seconds = std::ceil(duration.value());
  // Same expression order as the original raw-double code (b * p / 3600):
  // ToHours(billed) * price would divide first and can differ in the last
  // ulp, and every emitted number must stay bitwise identical.
  return Usd(billed_seconds * price.value() / 3600.0);
}

}  // namespace ccperf::cloud
