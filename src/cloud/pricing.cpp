#include "cloud/pricing.h"

#include <cmath>

#include "common/check.h"

namespace ccperf::cloud {

double ProratedCost(double seconds, double price_per_hour) {
  CCPERF_CHECK(seconds >= 0.0, "negative duration");
  CCPERF_CHECK(price_per_hour >= 0.0, "negative price");
  const double billed_seconds = std::ceil(seconds);
  return billed_seconds * price_per_hour / 3600.0;
}

}  // namespace ccperf::cloud
