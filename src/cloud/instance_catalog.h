// Cloud resource catalog — the paper's Table 3 (Amazon EC2 Oregon, 2020)
// plus the GPU device parameters of the calibrated performance model.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/units.h"

namespace ccperf::cloud {

enum class GpuKind { kK80, kM60 };

const char* GpuKindName(GpuKind kind);

/// Calibrated per-GPU device model parameters. `relative_speed` is the
/// sustained throughput relative to the K80 reference (the device the
/// paper's CaffeNet/GoogLeNet reference times were measured on).
struct GpuSpec {
  GpuKind kind = GpuKind::kK80;
  std::string name;          // "NVIDIA K80"
  int cores = 0;             // parallel processing cores (paper §4.1.2)
  double mem_gb = 0.0;       // per-GPU memory
  double relative_speed = 1.0;
  // Utilization model (paper Fig. 5): util(B) = u_min + (1-u_min)(1-e^{-B/b0}).
  // u_min = 0.30 makes batch-1 latency match Fig. 4 (0.09 s CaffeNet);
  // b0 = 150 makes the 50k-image sweep saturate around B = 300 (Fig. 5)
  // with the paper's ~2.3x spread between tiny and saturated batches.
  double util_min = 0.30;
  double util_b0 = 150.0;
  // Per-kernel launch overhead, dominates single-inference latency (Fig. 4).
  Seconds kernel_launch{1.5e-3};
  // Largest batch that fits GPU memory (the paper's b_i).
  std::int64_t max_batch = 2000;

  /// Fraction of peak throughput achieved at batch size `b` (in (0, 1]).
  [[nodiscard]] double Utilization(std::int64_t b) const;
};

/// One EC2 instance type (a row of the paper's Table 3).
struct InstanceType {
  std::string name;      // "p2.xlarge"
  std::string category;  // "p2" / "g3"
  int vcpus = 0;
  int gpus = 0;          // the paper's v_i
  double mem_gb = 0.0;
  double gpu_mem_gb = 0.0;
  UsdPerHour price_per_hour;  // the paper's c_i
  GpuKind gpu = GpuKind::kK80;
  /// Spot-market hourly price. 0 means no spot market for this type.
  /// Appended after `gpu` so positional initializers of the on-demand
  /// columns stay valid.
  UsdPerHour spot_price_per_hour;
  /// Silent-data-corruption onset rate per instance-hour (cloud/sdc.h).
  /// Fleet studies put GPU/DRAM upsets at ~1e-4..1e-2 per device-hour;
  /// the older, denser K80 boards (p2) run hotter than the M60s (g3).
  /// Appended last for the same positional-initializer reason.
  RatePerHour sdc_rate_per_hour;
};

/// Immutable set of instance types + GPU device specs.
class InstanceCatalog {
 public:
  /// The paper's Table 3: six EC2 GPU instance types (p2.*, g3.*).
  static InstanceCatalog AwsEc2();

  /// Custom catalog (tests / other providers).
  InstanceCatalog(std::vector<InstanceType> types, std::vector<GpuSpec> gpus);

  [[nodiscard]] std::span<const InstanceType> Types() const { return types_; }

  /// Lookup by exact name; throws CheckError when absent.
  [[nodiscard]] const InstanceType& Find(const std::string& name) const;

  /// True if `name` is in the catalog.
  [[nodiscard]] bool Contains(const std::string& name) const;

  /// All types of one category ("p2"), in catalog order.
  [[nodiscard]] std::vector<InstanceType> Category(
      const std::string& category) const;

  /// Device spec for a GPU kind; throws when absent.
  [[nodiscard]] const GpuSpec& Gpu(GpuKind kind) const;

 private:
  std::vector<InstanceType> types_;
  std::vector<GpuSpec> gpus_;
};

}  // namespace ccperf::cloud
