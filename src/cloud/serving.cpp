#include "cloud/serving.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numbers>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"

namespace ccperf::cloud {

void ValidateServingPolicy(const ServingPolicy& policy) {
  CCPERF_CHECK(policy.max_batch >= 1, "max_batch must be >= 1, got ",
               policy.max_batch);
  CCPERF_CHECK(policy.max_wait_s >= 0.0, "max_wait_s must be >= 0, got ",
               policy.max_wait_s);
  CCPERF_CHECK(policy.deadline_s > 0.0, "deadline_s must be positive, got ",
               policy.deadline_s);
}

double RetryPolicy::BackoffFor(int attempt) const {
  CCPERF_CHECK(attempt >= 1, "attempt is 1-based");
  double backoff = base_backoff_s;
  for (int k = 1; k < attempt; ++k) backoff *= backoff_multiplier;
  return std::min(backoff, max_backoff_s);
}

void ValidateRetryPolicy(const RetryPolicy& policy) {
  CCPERF_CHECK(policy.max_retries >= 0, "max_retries must be >= 0, got ",
               policy.max_retries);
  CCPERF_CHECK(policy.base_backoff_s >= 0.0 && policy.max_backoff_s >= 0.0,
               "backoffs must be >= 0");
  CCPERF_CHECK(policy.backoff_multiplier >= 1.0,
               "backoff multiplier must be >= 1, got ",
               policy.backoff_multiplier);
}

ServingSimulator::ServingSimulator(const CloudSimulator& simulator)
    : simulator_(simulator) {}

double ServingSimulator::Capacity(const ResourceConfig& config,
                                  const VariantPerf& perf,
                                  const ServingPolicy& policy) const {
  CCPERF_CHECK(!config.Empty(), "empty configuration");
  double capacity = 0.0;
  for (const auto& [type_name, count] : config.instances) {
    const InstanceType& type = simulator_.Catalog().Find(type_name);
    const GpuSpec& gpu = simulator_.Catalog().Gpu(type.gpu);
    const std::int64_t batch = std::min(policy.max_batch, gpu.max_batch);
    const double service = simulator_.BatchSeconds(type, perf, batch);
    capacity += static_cast<double>(batch) / service *
                static_cast<double>(type.gpus * count);
  }
  return capacity;
}

ServingReport ServingSimulator::Simulate(const ResourceConfig& config,
                                         const VariantPerf& perf,
                                         double arrivals_per_s,
                                         double duration_s,
                                         const ServingPolicy& policy,
                                         Rng& rng) const {
  CCPERF_CHECK(arrivals_per_s > 0.0 && duration_s > 0.0,
               "arrival rate and duration must be positive");
  std::vector<double> arrivals;
  double t = 0.0;
  for (;;) {
    t += -std::log(1.0 - rng.NextDouble()) / arrivals_per_s;
    if (t > duration_s) break;
    arrivals.push_back(t);
  }
  return SimulateTrace(config, perf, std::move(arrivals), duration_s, policy);
}

ServingReport ServingSimulator::SimulateTrace(
    const ResourceConfig& config, const VariantPerf& perf,
    std::vector<double> arrivals, double duration_s,
    const ServingPolicy& policy) const {
  CCPERF_CHECK(!config.Empty(), "empty configuration");
  CCPERF_CHECK(duration_s > 0.0, "duration must be positive");
  ValidateServingPolicy(policy);
  CCPERF_CHECK(std::is_sorted(arrivals.begin(), arrivals.end()),
               "arrival trace must be time-sorted");

  // One server per GPU. Per-GPU batch limit respects device memory.
  struct GpuServer {
    const InstanceType* type;
    double free_at = 0.0;
    double busy = 0.0;
  };
  std::vector<GpuServer> gpus;
  for (const auto& [type_name, count] : config.instances) {
    const InstanceType& type = simulator_.Catalog().Find(type_name);
    for (int i = 0; i < count * type.gpus; ++i) gpus.push_back({&type});
  }
  CCPERF_CHECK(!gpus.empty(), "configuration has no GPUs");

  ServingReport report;
  report.duration_s = duration_s;
  report.requests = static_cast<std::int64_t>(arrivals.size());
  for (const auto& [type_name, count] : config.instances) {
    report.cost_per_hour_usd +=
        simulator_.Catalog().Find(type_name).price_per_hour * count;
  }
  if (arrivals.empty()) return report;

  const double infinity = std::numeric_limits<double>::infinity();
  std::deque<double> queue;  // arrival times of waiting requests
  std::vector<double> latencies;
  latencies.reserve(arrivals.size());
  std::size_t next_arrival = 0;
  const std::size_t backlog_limit =
      static_cast<std::size_t>(policy.max_batch) * 200 + 10000;

  while (next_arrival < arrivals.size() || !queue.empty()) {
    if (queue.empty()) {
      queue.push_back(arrivals[next_arrival++]);
      continue;
    }
    // Earliest-free GPU serves the next batch.
    auto gpu_it = std::min_element(
        gpus.begin(), gpus.end(),
        [](const GpuServer& a, const GpuServer& b) {
          return a.free_at < b.free_at;
        });
    const GpuSpec& spec = simulator_.Catalog().Gpu(gpu_it->type->gpu);
    const auto batch_cap =
        std::min<std::int64_t>(policy.max_batch, spec.max_batch);

    // When does the dispatch trigger fire? Either the oldest request's
    // wait deadline, or the moment the queue would fill a batch.
    const double deadline = queue.front() + policy.max_wait_s;
    double full_at = infinity;
    const std::size_t missing =
        static_cast<std::size_t>(batch_cap) > queue.size()
            ? static_cast<std::size_t>(batch_cap) - queue.size()
            : 0;
    if (missing == 0) {
      full_at = queue.back();
    } else if (next_arrival + missing - 1 < arrivals.size()) {
      full_at = arrivals[next_arrival + missing - 1];
    }
    const double dispatch_at =
        std::max(gpu_it->free_at, std::min(deadline, full_at));

    // Absorb every request that has arrived by the dispatch moment.
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival] <= dispatch_at) {
      queue.push_back(arrivals[next_arrival++]);
    }
    const auto batch_size = std::min<std::int64_t>(
        batch_cap, static_cast<std::int64_t>(queue.size()));
    const double service =
        simulator_.BatchSeconds(*gpu_it->type, perf, batch_size);
    const double completion = dispatch_at + service;
    for (std::int64_t k = 0; k < batch_size; ++k) {
      latencies.push_back(completion - queue.front());
      queue.pop_front();
    }
    gpu_it->free_at = completion;
    gpu_it->busy += service;
    report.max_queue = std::max(report.max_queue,
                                static_cast<double>(queue.size()));
    if (queue.size() > backlog_limit) {
      report.stable = false;
      break;
    }
  }

  report.completed = static_cast<std::int64_t>(latencies.size());
  std::int64_t in_deadline = 0;
  for (double latency : latencies) {
    if (latency <= policy.deadline_s) ++in_deadline;
  }
  report.deadline_misses = report.completed - in_deadline;
  report.goodput_per_s = static_cast<double>(in_deadline) / duration_s;
  report.accuracy_weighted_goodput = report.goodput_per_s;
  if (report.requests > 0) {
    report.deadline_miss_rate =
        1.0 - static_cast<double>(in_deadline) /
                  static_cast<double>(report.requests);
  }
  if (!latencies.empty()) {
    report.mean_latency_s = MeanOf(latencies);
    report.p50_latency_s = Quantile(latencies, 0.50);
    report.p95_latency_s = Quantile(latencies, 0.95);
    report.p99_latency_s = Quantile(latencies, 0.99);
  }
  double busy = 0.0;
  for (const auto& gpu : gpus) busy += gpu.busy;
  report.utilization =
      busy / (static_cast<double>(gpus.size()) * duration_s);
  return report;
}

ServingReport ServingSimulator::SimulateFaulted(
    const ResourceConfig& config, const VariantPerf& perf,
    std::vector<double> arrivals, double duration_s,
    const ServingPolicy& policy, const RetryPolicy& retry,
    const FaultSchedule& faults, InflightPolicy inflight,
    double variant_accuracy) const {
  CCPERF_CHECK(!config.Empty(), "empty configuration");
  CCPERF_CHECK(duration_s > 0.0, "duration must be positive");
  ValidateServingPolicy(policy);
  ValidateRetryPolicy(retry);
  faults.Validate();
  CCPERF_CHECK(std::is_sorted(arrivals.begin(), arrivals.end()),
               "arrival trace must be time-sorted");
  CCPERF_CHECK(variant_accuracy > 0.0 && variant_accuracy <= 1.0,
               "variant accuracy must be in (0, 1]");

  // One server per GPU, one fault timeline per *instance* — when an
  // instance dies every GPU on it dies with it.
  struct GpuServer {
    const InstanceType* type;
    int instance;
    double free_at = 0.0;
    double busy = 0.0;
  };
  std::vector<GpuServer> gpus;
  std::vector<InstanceTimeline> timelines;
  int instance_index = 0;
  for (const auto& [type_name, count] : config.instances) {
    const InstanceType& type = simulator_.Catalog().Find(type_name);
    for (int c = 0; c < count; ++c) {
      timelines.emplace_back(faults, instance_index, duration_s);
      for (int g = 0; g < type.gpus; ++g) {
        gpus.push_back({&type, instance_index, 0.0, 0.0});
      }
      ++instance_index;
    }
  }
  CCPERF_CHECK(!gpus.empty(), "configuration has no GPUs");

  ServingReport report;
  report.duration_s = duration_s;
  report.requests = static_cast<std::int64_t>(arrivals.size());
  {
    // Failed instance-seconds are not billed (spot semantics): the
    // effective hourly rate scales with each instance's up fraction.
    int idx = 0;
    for (const auto& [type_name, count] : config.instances) {
      const double price = simulator_.Catalog().Find(type_name).price_per_hour;
      for (int c = 0; c < count; ++c) {
        const double up_fraction =
            1.0 - timelines[static_cast<std::size_t>(idx)].DownSeconds() /
                      duration_s;
        report.cost_per_hour_usd += price * up_fraction;
        ++idx;
      }
    }
  }
  if (arrivals.empty()) return report;

  const double infinity = std::numeric_limits<double>::infinity();
  const bool has_deadline = std::isfinite(policy.deadline_s);

  // A request waiting for (re-)dispatch. `ready` is when it (re-)enters the
  // queue; `arrival` is the original arrival that deadlines/latency use.
  struct Pending {
    double ready = 0.0;
    double arrival = 0.0;
    int attempts = 0;
  };
  const auto later = [](const Pending& a, const Pending& b) {
    if (a.ready != b.ready) return a.ready > b.ready;
    if (a.arrival != b.arrival) return a.arrival > b.arrival;
    return a.attempts > b.attempts;
  };
  std::vector<Pending> requeued;  // min-heap by `later`
  std::deque<Pending> waiting;    // admitted, sorted by ready
  std::size_t next_arrival = 0;
  std::vector<double> latencies;
  latencies.reserve(arrivals.size());
  std::int64_t in_deadline = 0;
  const std::size_t backlog_limit =
      static_cast<std::size_t>(policy.max_batch) * 200 + 10000;

  const auto next_source_ready = [&]() {
    const double from_trace =
        next_arrival < arrivals.size() ? arrivals[next_arrival] : infinity;
    const double from_retry = requeued.empty() ? infinity
                                               : requeued.front().ready;
    return std::min(from_trace, from_retry);
  };
  // Admit every source request ready by `t`, in merged ready order so
  // `waiting` stays sorted.
  const auto admit_until = [&](double t) {
    for (;;) {
      const double from_trace =
          next_arrival < arrivals.size() ? arrivals[next_arrival] : infinity;
      const double from_retry = requeued.empty() ? infinity
                                                 : requeued.front().ready;
      if (std::min(from_trace, from_retry) > t) break;
      if (from_trace <= from_retry) {
        waiting.push_back({from_trace, from_trace, 0});
        ++next_arrival;
      } else {
        std::pop_heap(requeued.begin(), requeued.end(), later);
        waiting.push_back(requeued.back());
        requeued.pop_back();
      }
    }
  };

  while (next_arrival < arrivals.size() || !requeued.empty() ||
         !waiting.empty()) {
    if (waiting.empty()) {
      admit_until(next_source_ready());
      continue;
    }
    const double t_first = waiting.front().ready;

    // The GPU that can start service earliest, honoring its instance's
    // down intervals.
    std::size_t best = gpus.size();
    double best_at = infinity;
    for (std::size_t i = 0; i < gpus.size(); ++i) {
      const double at =
          timelines[static_cast<std::size_t>(gpus[i].instance)].NextUpAt(
              std::max(gpus[i].free_at, t_first));
      if (at < best_at) {
        best_at = at;
        best = i;
      }
    }
    if (best == gpus.size()) {
      // The whole fleet is permanently gone: everything still queued or
      // yet to arrive is lost.
      report.dropped_failed +=
          static_cast<std::int64_t>(waiting.size() + requeued.size()) +
          static_cast<std::int64_t>(arrivals.size() - next_arrival);
      break;
    }
    GpuServer& gpu = gpus[best];
    const InstanceTimeline& timeline =
        timelines[static_cast<std::size_t>(gpu.instance)];
    const GpuSpec& spec = simulator_.Catalog().Gpu(gpu.type->gpu);
    const auto batch_cap =
        std::min<std::int64_t>(policy.max_batch, spec.max_batch);

    // Dispatch trigger: oldest wait deadline or the moment the batch would
    // fill (merging the trace with pending retries).
    double full_at = infinity;
    if (waiting.size() >= static_cast<std::size_t>(batch_cap)) {
      full_at = waiting[static_cast<std::size_t>(batch_cap) - 1].ready;
    } else {
      std::size_t missing =
          static_cast<std::size_t>(batch_cap) - waiting.size();
      std::vector<double> retry_readies;
      retry_readies.reserve(requeued.size());
      for (const Pending& p : requeued) retry_readies.push_back(p.ready);
      std::sort(retry_readies.begin(), retry_readies.end());
      std::size_t ai = next_arrival, ri = 0;
      double kth = infinity;
      while (missing > 0) {
        const double a =
            ai < arrivals.size() ? arrivals[ai] : infinity;
        const double r =
            ri < retry_readies.size() ? retry_readies[ri] : infinity;
        kth = std::min(a, r);
        if (kth == infinity) break;
        if (a <= r) ++ai; else ++ri;
        --missing;
      }
      full_at = missing == 0 ? kth : infinity;
    }
    const double wait_deadline = t_first + policy.max_wait_s;
    double dispatch_at =
        std::max(best_at, std::min(wait_deadline, full_at));
    dispatch_at = timeline.NextUpAt(dispatch_at);
    if (!std::isfinite(dispatch_at)) {
      gpu.free_at = infinity;  // preempted: retire this server
      continue;
    }
    admit_until(dispatch_at);

    // Requests whose deadline expired before service starts are dropped.
    if (has_deadline) {
      for (auto it = waiting.begin(); it != waiting.end();) {
        if (it->arrival + policy.deadline_s < dispatch_at) {
          ++report.dropped_deadline;
          it = waiting.erase(it);
        } else {
          ++it;
        }
      }
      if (waiting.empty()) continue;
    }

    const auto batch_size = std::min<std::int64_t>(
        batch_cap, static_cast<std::int64_t>(waiting.size()));
    const double service =
        simulator_.BatchSeconds(*gpu.type, perf, batch_size) *
        timeline.SlowdownAt(dispatch_at);
    const double completion = dispatch_at + service;
    const double fail_at = timeline.NextDownAfter(dispatch_at);
    if (fail_at < completion) {
      // The instance dies mid-batch; the partial service is wasted and the
      // requests are requeued with backoff or lost, per policy.
      gpu.busy += fail_at - dispatch_at;
      gpu.free_at = fail_at;
      for (std::int64_t k = 0; k < batch_size; ++k) {
        Pending p = waiting.front();
        waiting.pop_front();
        if (inflight == InflightPolicy::kDrop ||
            p.attempts + 1 > retry.max_retries) {
          ++report.dropped_failed;
        } else {
          ++report.retries;
          requeued.push_back({fail_at + retry.BackoffFor(p.attempts + 1),
                              p.arrival, p.attempts + 1});
          std::push_heap(requeued.begin(), requeued.end(), later);
        }
      }
    } else {
      for (std::int64_t k = 0; k < batch_size; ++k) {
        const Pending p = waiting.front();
        waiting.pop_front();
        latencies.push_back(completion - p.arrival);
        if (completion <= p.arrival + policy.deadline_s) {
          ++in_deadline;
        } else {
          ++report.deadline_misses;
        }
        ++report.completed;
      }
      gpu.free_at = completion;
      gpu.busy += service;
    }
    report.max_queue = std::max(report.max_queue,
                                static_cast<double>(waiting.size()));
    if (waiting.size() > backlog_limit) {
      report.stable = false;
      break;
    }
  }

  if (!latencies.empty()) {
    report.mean_latency_s = MeanOf(latencies);
    report.p50_latency_s = Quantile(latencies, 0.50);
    report.p95_latency_s = Quantile(latencies, 0.95);
    report.p99_latency_s = Quantile(latencies, 0.99);
  }
  report.goodput_per_s = static_cast<double>(in_deadline) / duration_s;
  report.accuracy_weighted_goodput =
      report.goodput_per_s * variant_accuracy;
  report.deadline_miss_rate =
      1.0 - static_cast<double>(in_deadline) /
                static_cast<double>(report.requests);
  double busy = 0.0;
  double available = 0.0;
  for (const auto& gpu : gpus) {
    busy += gpu.busy;
    available +=
        duration_s -
        timelines[static_cast<std::size_t>(gpu.instance)].DownSeconds();
  }
  report.utilization = available > 0.0 ? busy / available : 0.0;
  return report;
}

std::vector<double> GenerateDiurnalArrivals(double mean_rate_per_s,
                                            double amplitude_per_s,
                                            double period_s,
                                            double duration_s, Rng& rng) {
  CCPERF_CHECK(mean_rate_per_s > 0.0, "mean rate must be positive");
  CCPERF_CHECK(amplitude_per_s >= 0.0 && amplitude_per_s <= mean_rate_per_s,
               "amplitude must be in [0, mean]");
  CCPERF_CHECK(period_s > 0.0 && duration_s > 0.0,
               "period and duration must be positive");
  // Thinning (Lewis-Shedler): propose at the peak rate, accept with
  // probability rate(t) / peak.
  const double peak = mean_rate_per_s + amplitude_per_s;
  std::vector<double> arrivals;
  double t = 0.0;
  for (;;) {
    t += -std::log(1.0 - rng.NextDouble()) / peak;
    if (t > duration_s) break;
    const double rate =
        mean_rate_per_s +
        amplitude_per_s * std::sin(2.0 * std::numbers::pi * t / period_s -
                                   std::numbers::pi / 2.0);
    if (rng.NextDouble() * peak < rate) arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace ccperf::cloud
