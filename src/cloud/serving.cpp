#include "cloud/serving.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numbers>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"

namespace ccperf::cloud {

ServingSimulator::ServingSimulator(const CloudSimulator& simulator)
    : simulator_(simulator) {}

double ServingSimulator::Capacity(const ResourceConfig& config,
                                  const VariantPerf& perf,
                                  const ServingPolicy& policy) const {
  CCPERF_CHECK(!config.Empty(), "empty configuration");
  double capacity = 0.0;
  for (const auto& [type_name, count] : config.instances) {
    const InstanceType& type = simulator_.Catalog().Find(type_name);
    const GpuSpec& gpu = simulator_.Catalog().Gpu(type.gpu);
    const std::int64_t batch = std::min(policy.max_batch, gpu.max_batch);
    const double service = simulator_.BatchSeconds(type, perf, batch);
    capacity += static_cast<double>(batch) / service *
                static_cast<double>(type.gpus * count);
  }
  return capacity;
}

ServingReport ServingSimulator::Simulate(const ResourceConfig& config,
                                         const VariantPerf& perf,
                                         double arrivals_per_s,
                                         double duration_s,
                                         const ServingPolicy& policy,
                                         Rng& rng) const {
  CCPERF_CHECK(arrivals_per_s > 0.0 && duration_s > 0.0,
               "arrival rate and duration must be positive");
  std::vector<double> arrivals;
  double t = 0.0;
  for (;;) {
    t += -std::log(1.0 - rng.NextDouble()) / arrivals_per_s;
    if (t > duration_s) break;
    arrivals.push_back(t);
  }
  return SimulateTrace(config, perf, std::move(arrivals), duration_s, policy);
}

ServingReport ServingSimulator::SimulateTrace(
    const ResourceConfig& config, const VariantPerf& perf,
    std::vector<double> arrivals, double duration_s,
    const ServingPolicy& policy) const {
  CCPERF_CHECK(!config.Empty(), "empty configuration");
  CCPERF_CHECK(duration_s > 0.0, "duration must be positive");
  CCPERF_CHECK(policy.max_batch >= 1 && policy.max_wait_s >= 0.0,
               "invalid serving policy");
  CCPERF_CHECK(std::is_sorted(arrivals.begin(), arrivals.end()),
               "arrival trace must be time-sorted");

  // One server per GPU. Per-GPU batch limit respects device memory.
  struct GpuServer {
    const InstanceType* type;
    double free_at = 0.0;
    double busy = 0.0;
  };
  std::vector<GpuServer> gpus;
  for (const auto& [type_name, count] : config.instances) {
    const InstanceType& type = simulator_.Catalog().Find(type_name);
    for (int i = 0; i < count * type.gpus; ++i) gpus.push_back({&type});
  }
  CCPERF_CHECK(!gpus.empty(), "configuration has no GPUs");

  ServingReport report;
  report.duration_s = duration_s;
  report.requests = static_cast<std::int64_t>(arrivals.size());
  for (const auto& [type_name, count] : config.instances) {
    report.cost_per_hour_usd +=
        simulator_.Catalog().Find(type_name).price_per_hour * count;
  }
  if (arrivals.empty()) return report;

  const double infinity = std::numeric_limits<double>::infinity();
  std::deque<double> queue;  // arrival times of waiting requests
  std::vector<double> latencies;
  latencies.reserve(arrivals.size());
  std::size_t next_arrival = 0;
  const std::size_t backlog_limit =
      static_cast<std::size_t>(policy.max_batch) * 200 + 10000;

  while (next_arrival < arrivals.size() || !queue.empty()) {
    if (queue.empty()) {
      queue.push_back(arrivals[next_arrival++]);
      continue;
    }
    // Earliest-free GPU serves the next batch.
    auto gpu_it = std::min_element(
        gpus.begin(), gpus.end(),
        [](const GpuServer& a, const GpuServer& b) {
          return a.free_at < b.free_at;
        });
    const GpuSpec& spec = simulator_.Catalog().Gpu(gpu_it->type->gpu);
    const auto batch_cap =
        std::min<std::int64_t>(policy.max_batch, spec.max_batch);

    // When does the dispatch trigger fire? Either the oldest request's
    // wait deadline, or the moment the queue would fill a batch.
    const double deadline = queue.front() + policy.max_wait_s;
    double full_at = infinity;
    const std::size_t missing =
        static_cast<std::size_t>(batch_cap) > queue.size()
            ? static_cast<std::size_t>(batch_cap) - queue.size()
            : 0;
    if (missing == 0) {
      full_at = queue.back();
    } else if (next_arrival + missing - 1 < arrivals.size()) {
      full_at = arrivals[next_arrival + missing - 1];
    }
    const double dispatch_at =
        std::max(gpu_it->free_at, std::min(deadline, full_at));

    // Absorb every request that has arrived by the dispatch moment.
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival] <= dispatch_at) {
      queue.push_back(arrivals[next_arrival++]);
    }
    const auto batch_size = std::min<std::int64_t>(
        batch_cap, static_cast<std::int64_t>(queue.size()));
    const double service =
        simulator_.BatchSeconds(*gpu_it->type, perf, batch_size);
    const double completion = dispatch_at + service;
    for (std::int64_t k = 0; k < batch_size; ++k) {
      latencies.push_back(completion - queue.front());
      queue.pop_front();
    }
    gpu_it->free_at = completion;
    gpu_it->busy += service;
    report.max_queue = std::max(report.max_queue,
                                static_cast<double>(queue.size()));
    if (queue.size() > backlog_limit) {
      report.stable = false;
      break;
    }
  }

  if (!latencies.empty()) {
    report.mean_latency_s = MeanOf(latencies);
    report.p50_latency_s = Quantile(latencies, 0.50);
    report.p95_latency_s = Quantile(latencies, 0.95);
    report.p99_latency_s = Quantile(latencies, 0.99);
  }
  double busy = 0.0;
  for (const auto& gpu : gpus) busy += gpu.busy;
  report.utilization =
      busy / (static_cast<double>(gpus.size()) * duration_s);
  return report;
}

std::vector<double> GenerateDiurnalArrivals(double mean_rate_per_s,
                                            double amplitude_per_s,
                                            double period_s,
                                            double duration_s, Rng& rng) {
  CCPERF_CHECK(mean_rate_per_s > 0.0, "mean rate must be positive");
  CCPERF_CHECK(amplitude_per_s >= 0.0 && amplitude_per_s <= mean_rate_per_s,
               "amplitude must be in [0, mean]");
  CCPERF_CHECK(period_s > 0.0 && duration_s > 0.0,
               "period and duration must be positive");
  // Thinning (Lewis-Shedler): propose at the peak rate, accept with
  // probability rate(t) / peak.
  const double peak = mean_rate_per_s + amplitude_per_s;
  std::vector<double> arrivals;
  double t = 0.0;
  for (;;) {
    t += -std::log(1.0 - rng.NextDouble()) / peak;
    if (t > duration_s) break;
    const double rate =
        mean_rate_per_s +
        amplitude_per_s * std::sin(2.0 * std::numbers::pi * t / period_s -
                                   std::numbers::pi / 2.0);
    if (rng.NextDouble() * peak < rate) arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace ccperf::cloud
