#include "cloud/serving.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numbers>
#include <utility>

#include "cloud/pricing.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/snapshot.h"
#include "common/stats.h"
#include "common/threading.h"

namespace ccperf::cloud {

void ValidateServingPolicy(const ServingPolicy& policy) {
  CCPERF_CHECK(policy.max_batch >= 1, "max_batch must be >= 1, got ",
               policy.max_batch);
  CCPERF_CHECK(policy.max_wait_s >= 0.0, "max_wait_s must be >= 0, got ",
               policy.max_wait_s);
  CCPERF_CHECK(policy.deadline_s > 0.0, "deadline_s must be positive, got ",
               policy.deadline_s);
}

double RetryPolicy::BackoffFor(int attempt) const {
  CCPERF_CHECK(attempt >= 1, "attempt is 1-based");
  if (base_backoff_s <= 0.0 || backoff_multiplier <= 1.0) {
    // No growth possible; skip the walk (a multiplier of 1 would otherwise
    // spin `attempt` times without ever reaching the ceiling).
    return std::min(base_backoff_s, max_backoff_s);
  }
  // Multiplicative walk that stops at the ceiling: the running product can
  // never overflow a double to infinity, and a pathological attempt count
  // (e.g. INT_MAX) costs O(log(max/base)) iterations, not O(attempt).
  double backoff = base_backoff_s;
  for (int k = 1; k < attempt && backoff < max_backoff_s; ++k) {
    backoff *= backoff_multiplier;
  }
  return std::min(backoff, max_backoff_s);
}

void ValidateRetryPolicy(const RetryPolicy& policy) {
  CCPERF_CHECK(policy.max_retries >= 0, "max_retries must be >= 0, got ",
               policy.max_retries);
  CCPERF_CHECK(policy.base_backoff_s >= 0.0 &&
                   std::isfinite(policy.base_backoff_s),
               "base backoff must be finite and >= 0, got ",
               policy.base_backoff_s);
  CCPERF_CHECK(policy.max_backoff_s >= 0.0 &&
                   std::isfinite(policy.max_backoff_s),
               "max backoff (the clamp ceiling) must be finite and >= 0, "
               "got ",
               policy.max_backoff_s);
  CCPERF_CHECK(policy.backoff_multiplier >= 1.0 &&
                   std::isfinite(policy.backoff_multiplier),
               "backoff multiplier must be finite and >= 1, got ",
               policy.backoff_multiplier);
}

void ValidateRedundancyPolicy(const RedundancyPolicy& policy) {
  CCPERF_CHECK(policy.replicas >= 1, "replicas must be >= 1, got ",
               policy.replicas);
  CCPERF_CHECK(policy.hedge_after_s > 0.0,
               "hedge_after_s must be positive, got ", policy.hedge_after_s);
  CCPERF_CHECK(policy.max_hedges >= 0, "max_hedges must be >= 0, got ",
               policy.max_hedges);
}

ServingSimulator::ServingSimulator(const CloudSimulator& simulator)
    : simulator_(simulator) {}

double ServingSimulator::Capacity(const ResourceConfig& config,
                                  const VariantPerf& perf,
                                  const ServingPolicy& policy) const {
  CCPERF_CHECK(!config.Empty(), "empty configuration");
  double capacity = 0.0;
  for (const auto& [type_name, count] : config.instances) {
    const InstanceType& type = simulator_.Catalog().Find(type_name);
    const GpuSpec& gpu = simulator_.Catalog().Gpu(type.gpu);
    const std::int64_t batch = std::min(policy.max_batch, gpu.max_batch);
    const double service =
        simulator_.BatchSeconds(type, perf, batch).value();
    capacity += static_cast<double>(batch) / service *
                static_cast<double>(type.gpus * count);
  }
  return capacity;
}

ServingReport ServingSimulator::Simulate(const ResourceConfig& config,
                                         const VariantPerf& perf,
                                         double arrivals_per_s,
                                         double duration_s,
                                         const ServingPolicy& policy,
                                         Rng& rng) const {
  CCPERF_CHECK(arrivals_per_s > 0.0 && duration_s > 0.0,
               "arrival rate and duration must be positive");
  std::vector<double> arrivals;
  double t = 0.0;
  for (;;) {
    t += -std::log(1.0 - rng.NextDouble()) / arrivals_per_s;
    if (t > duration_s) break;
    arrivals.push_back(t);
  }
  return SimulateTrace(config, perf, std::move(arrivals), duration_s, policy);
}

ServingReport ServingSimulator::SimulateTrace(
    const ResourceConfig& config, const VariantPerf& perf,
    std::vector<double> arrivals, double duration_s,
    const ServingPolicy& policy) const {
  CCPERF_CHECK(!config.Empty(), "empty configuration");
  CCPERF_CHECK(duration_s > 0.0, "duration must be positive");
  ValidateServingPolicy(policy);
  CCPERF_CHECK(std::is_sorted(arrivals.begin(), arrivals.end()),
               "arrival trace must be time-sorted");

  // One server per GPU. Per-GPU batch limit respects device memory.
  struct GpuServer {
    const InstanceType* type;
    double free_at = 0.0;
    double busy = 0.0;
  };
  std::vector<GpuServer> gpus;
  for (const auto& [type_name, count] : config.instances) {
    const InstanceType& type = simulator_.Catalog().Find(type_name);
    for (int i = 0; i < count * type.gpus; ++i) gpus.push_back({&type});
  }
  CCPERF_CHECK(!gpus.empty(), "configuration has no GPUs");

  ServingReport report;
  report.duration_s = duration_s;
  report.requests = static_cast<std::int64_t>(arrivals.size());
  for (const auto& [type_name, count] : config.instances) {
    report.cost_per_hour_usd +=
        (simulator_.Catalog().Find(type_name).price_per_hour * count).value();
  }
  if (arrivals.empty()) return report;

  const double infinity = std::numeric_limits<double>::infinity();
  std::deque<double> queue;  // arrival times of waiting requests
  std::vector<double> latencies;
  latencies.reserve(arrivals.size());
  std::size_t next_arrival = 0;
  const std::size_t backlog_limit =
      static_cast<std::size_t>(policy.max_batch) * 200 + 10000;

  while (next_arrival < arrivals.size() || !queue.empty()) {
    if (queue.empty()) {
      queue.push_back(arrivals[next_arrival++]);
      continue;
    }
    // Earliest-free GPU serves the next batch.
    auto gpu_it = std::min_element(
        gpus.begin(), gpus.end(),
        [](const GpuServer& a, const GpuServer& b) {
          return a.free_at < b.free_at;
        });
    const GpuSpec& spec = simulator_.Catalog().Gpu(gpu_it->type->gpu);
    const auto batch_cap =
        std::min<std::int64_t>(policy.max_batch, spec.max_batch);

    // When does the dispatch trigger fire? Either the oldest request's
    // wait deadline, or the moment the queue would fill a batch.
    const double deadline = queue.front() + policy.max_wait_s;
    double full_at = infinity;
    const std::size_t missing =
        static_cast<std::size_t>(batch_cap) > queue.size()
            ? static_cast<std::size_t>(batch_cap) - queue.size()
            : 0;
    if (missing == 0) {
      full_at = queue.back();
    } else if (next_arrival + missing - 1 < arrivals.size()) {
      full_at = arrivals[next_arrival + missing - 1];
    }
    const double dispatch_at =
        std::max(gpu_it->free_at, std::min(deadline, full_at));

    // Absorb every request that has arrived by the dispatch moment.
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival] <= dispatch_at) {
      queue.push_back(arrivals[next_arrival++]);
    }
    const auto batch_size = std::min<std::int64_t>(
        batch_cap, static_cast<std::int64_t>(queue.size()));
    const double service =
        simulator_.BatchSeconds(*gpu_it->type, perf, batch_size).value();
    const double completion = dispatch_at + service;
    for (std::int64_t k = 0; k < batch_size; ++k) {
      latencies.push_back(completion - queue.front());
      queue.pop_front();
    }
    gpu_it->free_at = completion;
    gpu_it->busy += service;
    report.max_queue = std::max(report.max_queue,
                                static_cast<double>(queue.size()));
    if (queue.size() > backlog_limit) {
      report.stable = false;
      break;
    }
  }

  report.completed = static_cast<std::int64_t>(latencies.size());
  std::int64_t in_deadline = 0;
  for (double latency : latencies) {
    if (latency <= policy.deadline_s) ++in_deadline;
  }
  report.deadline_misses = report.completed - in_deadline;
  report.goodput_per_s = static_cast<double>(in_deadline) / duration_s;
  report.accuracy_weighted_goodput = report.goodput_per_s;
  if (report.requests > 0) {
    report.deadline_miss_rate =
        1.0 - static_cast<double>(in_deadline) /
                  static_cast<double>(report.requests);
  }
  if (!latencies.empty()) {
    report.mean_latency_s = MeanOf(latencies);
    report.p50_latency_s = Quantile(latencies, 0.50);
    report.p95_latency_s = Quantile(latencies, 0.95);
    report.p99_latency_s = Quantile(latencies, 0.99);
  }
  double busy = 0.0;
  for (const auto& gpu : gpus) busy += gpu.busy;
  report.utilization =
      busy / (static_cast<double>(gpus.size()) * duration_s);
  return report;
}

ServingReport ServingSimulator::SimulateFaulted(
    const ResourceConfig& config, const VariantPerf& perf,
    std::vector<double> arrivals, double duration_s,
    const ServingPolicy& policy, const RetryPolicy& retry,
    const FaultSchedule& faults, InflightPolicy inflight,
    double variant_accuracy, const RedundancyPolicy& redundancy,
    const SdcPolicy& sdc) const {
  FaultedServingEngine engine(*this, config, perf, std::move(arrivals),
                              duration_s, policy, retry, faults, inflight,
                              variant_accuracy, redundancy, sdc);
  while (!engine.Done()) engine.Step();
  return engine.Finish();
}

std::vector<ServingReport> ServingSimulator::SimulateFaultedMany(
    const std::vector<FaultedScenario>& scenarios, const VariantPerf& perf,
    double duration_s, const ServingPolicy& policy, const RetryPolicy& retry,
    InflightPolicy inflight) const {
  std::vector<ServingReport> reports(scenarios.size());
  FirstErrorCollector errors;
  // Each task owns slot i exclusively, so the reports need no lock; only
  // the error funnel is shared. grain=1: one simulation per task — the
  // per-scenario cost dwarfs dispatch overhead.
  ParallelFor(
      0, scenarios.size(),
      [&](std::size_t i) {
        const FaultedScenario& s = scenarios[i];
        try {
          reports[i] =
              SimulateFaulted(s.config, perf, s.arrivals, duration_s, policy,
                              retry, s.faults, inflight, s.variant_accuracy);
        } catch (const CheckError& error) {
          errors.Record(i, detail::ConcatMessage("scenario ", i, ": ",
                                                 error.what()));
        }
      },
      /*grain=*/1);
  errors.RethrowIfError();
  return reports;
}

ServingReport ServingSimulator::SimulateFaultedCheckpointed(
    const ResourceConfig& config, const VariantPerf& perf,
    std::vector<double> arrivals, double duration_s,
    const ServingPolicy& policy, const RetryPolicy& retry,
    const FaultSchedule& faults, const CheckpointPolicy& checkpoint,
    CheckpointStats* stats, InflightPolicy inflight,
    double variant_accuracy, const RedundancyPolicy& redundancy,
    const SdcPolicy& sdc) const {
  const std::vector<double> instants = CheckpointInstants(
      checkpoint, faults, duration_s, config.TotalInstances());
  FaultedServingEngine engine(*this, config, perf, std::move(arrivals),
                              duration_s, policy, retry, faults, inflight,
                              variant_accuracy, redundancy, sdc);
  CheckpointStats local;
  CheckpointStats& out = stats != nullptr ? *stats : local;
  const bool keep_history = out.keep_history;
  out = CheckpointStats{};
  out.keep_history = keep_history;

  std::size_t next_instant = 0;
  while (!engine.Done()) {
    engine.Step();
    // The watermark may jump several instants in one dispatch; every
    // crossed trigger fires (and is charged), all from the same state.
    while (next_instant < instants.size() &&
           engine.Watermark() >= instants[next_instant]) {
      out.latest = engine.Checkpoint();
      out.last_snapshot_s = instants[next_instant];
      ++out.snapshots;
      if (out.keep_history) {
        out.history.emplace_back(instants[next_instant], out.latest);
      }
      ++next_instant;
    }
  }
  // Snapshot time is charged to the cost model (Eq. 3-4 recovery term),
  // never to the simulated dynamics: the report stays bitwise identical
  // to SimulateFaulted. Cross-domain mirror copies bill on top.
  out.snapshot_overhead_s =
      out.snapshots * (checkpoint.snapshot_cost_s +
                       (checkpoint.mirror_copies - 1) *
                           checkpoint.mirror_cost_s);
  out.overhead_cost_usd = out.snapshot_overhead_s / 3600.0 *
                          PricePerHour(config, simulator_.Catalog()).value();
  return engine.Finish();
}

// --- faulted serving engine --------------------------------------------------

namespace {
constexpr std::uint32_t kServingSnapshotTag = 0x46535256u;  // 'FSRV'
}  // namespace

bool FaultedServingEngine::Later(const Pending& a, const Pending& b) {
  if (a.ready != b.ready) return a.ready > b.ready;
  if (a.arrival != b.arrival) return a.arrival > b.arrival;
  if (a.attempts != b.attempts) return a.attempts > b.attempts;
  return a.id > b.id;
}

FaultedServingEngine::FaultedServingEngine(
    const ServingSimulator& serving, const ResourceConfig& config,
    const VariantPerf& perf, std::vector<double> arrivals, double duration_s,
    const ServingPolicy& policy, const RetryPolicy& retry,
    const FaultSchedule& faults, InflightPolicy inflight,
    double variant_accuracy, const RedundancyPolicy& redundancy,
    const SdcPolicy& sdc)
    : sim_(&serving.Simulator()),
      config_(config),
      perf_(perf),
      arrivals_(std::move(arrivals)),
      duration_s_(duration_s),
      policy_(policy),
      retry_(retry),
      faults_(faults),
      inflight_(inflight),
      variant_accuracy_(variant_accuracy),
      redundancy_(redundancy),
      sdc_(sdc) {
  CCPERF_CHECK(!config_.Empty(), "empty configuration");
  CCPERF_CHECK(duration_s_ > 0.0, "duration must be positive");
  ValidateServingPolicy(policy_);
  ValidateRetryPolicy(retry_);
  ValidateRedundancyPolicy(redundancy_);
  sdc_.Validate();
  faults_.Validate();
  // Resolve the policy's detection profile once.
  switch (sdc_.kind) {
    case SdcPolicyKind::kOff:
    case SdcPolicyKind::kNone:
      break;  // no machinery, nothing detected
    case SdcPolicyKind::kAbft:
      sdc_machinery_ = kAbftTimeOverhead;
      sdc_coverage_ = kAbftCoverage;
      break;
    case SdcPolicyKind::kScrub:
      // The CRC scrub verifies resident weights between batches; a serving
      // window (transient upset) is over before the next sweep sees it, so
      // scrubbing pays its machinery yet everything in-window escapes.
      sdc_machinery_ = sdc_.scrub_cost_s / sdc_.scrub_interval_s;
      break;
    case SdcPolicyKind::kReexecSample:
      sdc_machinery_ = sdc_.sample_fraction;
      sdc_coverage_ = sdc_.sample_fraction;
      break;
  }
  CCPERF_CHECK(std::is_sorted(arrivals_.begin(), arrivals_.end()),
               "arrival trace must be time-sorted");
  CCPERF_CHECK(variant_accuracy_ > 0.0 && variant_accuracy_ <= 1.0,
               "variant accuracy must be in (0, 1]");

  // One server per GPU, one fault timeline per *instance* — when an
  // instance dies every GPU on it dies with it.
  int instance_index = 0;
  for (const auto& [type_name, count] : config_.instances) {
    const InstanceType& type = sim_->Catalog().Find(type_name);
    for (int c = 0; c < count; ++c) {
      timelines_.emplace_back(faults_, instance_index, duration_s_);
      for (int g = 0; g < type.gpus; ++g) {
        gpu_types_.push_back(&type);
        gpu_instance_.push_back(instance_index);
        gpus_.push_back(GpuState{});
      }
      ++instance_index;
    }
  }
  CCPERF_CHECK(!gpus_.empty(), "configuration has no GPUs");
  backlog_limit_ =
      static_cast<std::size_t>(policy_.max_batch) * 200 + 10000;

  report_.duration_s = duration_s_;
  report_.requests = static_cast<std::int64_t>(arrivals_.size());
  {
    // Failed instance-seconds are not billed (spot semantics): the
    // effective hourly rate scales with each instance's up fraction.
    int idx = 0;
    for (const auto& [type_name, count] : config_.instances) {
      const double price =
          sim_->Catalog().Find(type_name).price_per_hour.value();
      for (int c = 0; c < count; ++c) {
        const double up_fraction =
            1.0 - timelines_[static_cast<std::size_t>(idx)].DownSeconds() /
                      duration_s_;
        report_.cost_per_hour_usd += price * up_fraction;
        ++idx;
      }
    }
  }
  latencies_.reserve(arrivals_.size());
  copies_live_.assign(arrivals_.size(), 0);
  done_.assign(arrivals_.size(), 0);
  hedges_used_.assign(arrivals_.size(), 0);
  fingerprint_ = Fingerprint();
}

bool FaultedServingEngine::Done() const {
  return halted_ || (next_arrival_ >= arrivals_.size() && requeued_.empty() &&
                     waiting_.empty());
}

double FaultedServingEngine::NextSourceReady() const {
  const double infinity = std::numeric_limits<double>::infinity();
  const double from_trace =
      next_arrival_ < arrivals_.size() ? arrivals_[next_arrival_] : infinity;
  const double from_retry =
      requeued_.empty() ? infinity : requeued_.front().ready;
  return std::min(from_trace, from_retry);
}

// Admit every source request ready by `t`, in merged ready order so
// `waiting_` stays sorted.
void FaultedServingEngine::AdmitUntil(double t) {
  const double infinity = std::numeric_limits<double>::infinity();
  for (;;) {
    const double from_trace =
        next_arrival_ < arrivals_.size() ? arrivals_[next_arrival_] : infinity;
    const double from_retry =
        requeued_.empty() ? infinity : requeued_.front().ready;
    if (std::min(from_trace, from_retry) > t) break;
    if (from_trace <= from_retry) {
      const auto id = static_cast<std::int64_t>(next_arrival_);
      // Admission fans the request out into `replicas` copies; batch
      // selection keeps sibling copies out of one batch, so they ride
      // different dispatches (and usually different instances).
      for (int r = 0; r < redundancy_.replicas; ++r) {
        waiting_.push_back({from_trace, from_trace, 0, id});
      }
      copies_live_[next_arrival_] = redundancy_.replicas;
      ++next_arrival_;
    } else {
      std::pop_heap(requeued_.begin(), requeued_.end(), Later);
      waiting_.push_back(requeued_.back());
      requeued_.pop_back();
    }
  }
}

void FaultedServingEngine::Step() {
  CCPERF_CHECK(!Done(), "Step() on a finished serving engine");
  const double infinity = std::numeric_limits<double>::infinity();
  const bool has_deadline = std::isfinite(policy_.deadline_s);

  if (waiting_.empty()) {
    AdmitUntil(NextSourceReady());
    return;
  }
  const double t_first = waiting_.front().ready;

  // The GPU that can start service earliest, honoring its instance's
  // down intervals.
  std::size_t best = gpus_.size();
  double best_at = infinity;
  for (std::size_t i = 0; i < gpus_.size(); ++i) {
    const double at =
        timelines_[static_cast<std::size_t>(gpu_instance_[i])].NextUpAt(
            std::max(gpus_[i].free_at, t_first));
    if (at < best_at) {
      best_at = at;
      best = i;
    }
  }
  if (best == gpus_.size()) {
    // The whole fleet is permanently gone: every *request* (not copy) still
    // open or yet to arrive is lost. Counting ids keeps the tally unique
    // under replication; with one copy per request it equals the queue
    // sizes.
    std::int64_t open = 0;
    for (std::size_t id = 0; id < next_arrival_; ++id) {
      if (done_[id] == 0 && copies_live_[id] > 0) ++open;
    }
    report_.dropped_failed +=
        open + static_cast<std::int64_t>(arrivals_.size() - next_arrival_);
    halted_ = true;
    return;
  }
  GpuState& gpu = gpus_[best];
  const InstanceType& type = *gpu_types_[best];
  const InstanceTimeline& timeline =
      timelines_[static_cast<std::size_t>(gpu_instance_[best])];
  const GpuSpec& spec = sim_->Catalog().Gpu(type.gpu);
  const auto batch_cap =
      std::min<std::int64_t>(policy_.max_batch, spec.max_batch);

  // Dispatch trigger: oldest wait deadline or the moment the batch would
  // fill (merging the trace with pending retries).
  double full_at = infinity;
  if (waiting_.size() >= static_cast<std::size_t>(batch_cap)) {
    full_at = waiting_[static_cast<std::size_t>(batch_cap) - 1].ready;
  } else {
    std::size_t missing =
        static_cast<std::size_t>(batch_cap) - waiting_.size();
    std::vector<double> retry_readies;
    retry_readies.reserve(requeued_.size());
    for (const Pending& p : requeued_) retry_readies.push_back(p.ready);
    std::sort(retry_readies.begin(), retry_readies.end());
    std::size_t ai = next_arrival_, ri = 0;
    double kth = infinity;
    while (missing > 0) {
      const double a = ai < arrivals_.size() ? arrivals_[ai] : infinity;
      const double r =
          ri < retry_readies.size() ? retry_readies[ri] : infinity;
      kth = std::min(a, r);
      if (kth == infinity) break;
      if (a <= r) ++ai; else ++ri;
      --missing;
    }
    full_at = missing == 0 ? kth : infinity;
  }
  const double wait_deadline = t_first + policy_.max_wait_s;
  double dispatch_at = std::max(best_at, std::min(wait_deadline, full_at));
  dispatch_at = timeline.NextUpAt(dispatch_at);
  if (!std::isfinite(dispatch_at)) {
    gpu.free_at = infinity;  // preempted: retire this server
    return;
  }
  // `dispatch_at` is not monotone across iterations (different GPUs make
  // independent progress) — the checkpoint watermark is its running max.
  watermark_ = std::max(watermark_, dispatch_at);
  AdmitUntil(dispatch_at);

  // Copies whose deadline expired before service starts are dropped; a
  // request counts as deadline-dropped only when its *last* live copy
  // expires (stale copies of already-served requests just get discarded).
  if (has_deadline) {
    for (auto it = waiting_.begin(); it != waiting_.end();) {
      if (it->arrival + policy_.deadline_s < dispatch_at) {
        const auto id = static_cast<std::size_t>(it->id);
        if (done_[id] != 0) {
          ++report_.discarded_copies;
        } else if (--copies_live_[id] == 0) {
          ++report_.dropped_deadline;
        } else {
          ++report_.discarded_copies;
        }
        it = waiting_.erase(it);
      } else {
        ++it;
      }
    }
    if (waiting_.empty()) return;
  }

  // Deadline-triggered hedging: a copy still waiting `hedge_after_s` past
  // its arrival spawns an extra copy, ready now. The hedge races its
  // sibling on a different dispatch; whichever completes first wins.
  if (redundancy_.max_hedges > 0 &&
      std::isfinite(redundancy_.hedge_after_s)) {
    const std::size_t queued = waiting_.size();
    for (std::size_t i = 0; i < queued; ++i) {
      const Pending p = waiting_[i];
      const auto id = static_cast<std::size_t>(p.id);
      if (done_[id] != 0) continue;
      if (p.arrival + redundancy_.hedge_after_s > dispatch_at) continue;
      if (hedges_used_[id] >= redundancy_.max_hedges) continue;
      ++hedges_used_[id];
      ++copies_live_[id];
      ++report_.hedges;
      waiting_.push_back({dispatch_at, p.arrival, 0, p.id});
    }
  }

  // Select the batch front-to-back, never taking two copies of one request
  // (siblings must ride different dispatches to buy failure independence);
  // skipped siblings keep their queue position. With single-copy requests
  // this degenerates to taking the first batch_cap entries.
  std::vector<Pending> batch;
  batch.reserve(static_cast<std::size_t>(batch_cap));
  {
    std::vector<Pending> skipped;
    while (!waiting_.empty() &&
           batch.size() < static_cast<std::size_t>(batch_cap)) {
      const Pending p = waiting_.front();
      waiting_.pop_front();
      bool sibling_in_batch = false;
      for (const Pending& b : batch) {
        if (b.id == p.id) {
          sibling_in_batch = true;
          break;
        }
      }
      if (sibling_in_batch) {
        skipped.push_back(p);
      } else {
        batch.push_back(p);
      }
    }
    for (auto it = skipped.rbegin(); it != skipped.rend(); ++it) {
      waiting_.push_front(*it);
    }
  }
  if (batch.empty()) return;

  const auto batch_size = static_cast<std::int64_t>(batch.size());
  double service = sim_->BatchSeconds(type, perf_, batch_size).value() *
                   timeline.SlowdownAt(dispatch_at);
  bool escaped_batch = false;
  if (sdc_.kind != SdcPolicyKind::kOff) {
    // Always-on detection machinery stretches every batch; kOff skips this
    // whole block so detection-free runs stay bitwise identical.
    service *= 1.0 + sdc_machinery_;
    if (timeline.CorruptedAt(dispatch_at)) {
      ++report_.corrupted_batches;
      const auto n = static_cast<double>(++sdc_corrupt_seen_);
      const bool detected =
          std::floor(n * sdc_coverage_) > std::floor((n - 1.0) * sdc_coverage_);
      if (detected) {
        // The corrupted pass is discarded and the batch re-served — the GPU
        // pays for both, billing detection into utilization and cost.
        ++report_.sdc_detected;
        service *= 2.0;
      } else {
        ++report_.sdc_escaped;
        escaped_batch = true;
      }
    }
  }
  const double completion = dispatch_at + service;
  const double fail_at = timeline.NextDownAfter(dispatch_at);
  if (fail_at < completion) {
    // The instance dies mid-batch; the partial service is wasted and the
    // copies are requeued with backoff or lost, per policy. Across a
    // kPartition onset in-flight work is always lost: the isolated
    // instance cannot hand its batch back to the request plane.
    const bool partition_loss = timeline.PartitionedAt(fail_at);
    gpu.busy += fail_at - dispatch_at;
    gpu.free_at = fail_at;
    for (const Pending& p : batch) {
      const auto id = static_cast<std::size_t>(p.id);
      if (done_[id] != 0) {
        // A duplicate copy died with the batch; its request already
        // completed elsewhere, so nothing is lost and nothing retries.
        ++report_.discarded_copies;
        --copies_live_[id];
      } else if (inflight_ == InflightPolicy::kDrop || partition_loss ||
                 p.attempts + 1 > retry_.max_retries) {
        if (--copies_live_[id] == 0) ++report_.dropped_failed;
      } else {
        ++report_.retries;
        requeued_.push_back({fail_at + retry_.BackoffFor(p.attempts + 1),
                             p.arrival, p.attempts + 1, p.id});
        std::push_heap(requeued_.begin(), requeued_.end(), Later);
      }
    }
  } else {
    for (const Pending& p : batch) {
      const auto id = static_cast<std::size_t>(p.id);
      --copies_live_[id];
      if (done_[id] == 0) {
        done_[id] = 1;
        if (escaped_batch) ++report_.sdc_escaped_requests;
        latencies_.push_back(completion - p.arrival);
        if (completion <= p.arrival + policy_.deadline_s) {
          ++in_deadline_;
        } else {
          ++report_.deadline_misses;
        }
        ++report_.completed;
      } else {
        // First completion already won; this copy's service is duplicate
        // work, billed to utilization (and so to Eq. 3-4 cost) but not to
        // latency or goodput.
        ++report_.duplicate_completions;
        report_.duplicate_service_s +=
            service / static_cast<double>(batch_size);
      }
    }
    gpu.free_at = completion;
    gpu.busy += service;
  }
  report_.max_queue =
      std::max(report_.max_queue, static_cast<double>(waiting_.size()));
  if (waiting_.size() > backlog_limit_) {
    report_.stable = false;
    halted_ = true;
  }
}

ServingReport FaultedServingEngine::Finish() const {
  CCPERF_CHECK(Done(), "Finish() before the serving engine is done");
  ServingReport report = report_;
  if (arrivals_.empty()) return report;
  if (!latencies_.empty()) {
    report.mean_latency_s = MeanOf(latencies_);
    report.p50_latency_s = Quantile(latencies_, 0.50);
    report.p95_latency_s = Quantile(latencies_, 0.95);
    report.p99_latency_s = Quantile(latencies_, 0.99);
  }
  report.goodput_per_s = static_cast<double>(in_deadline_) / duration_s_;
  report.accuracy_weighted_goodput =
      report.goodput_per_s * variant_accuracy_;
  // Escaped corruption discounts its completions to kCorruptTop1Factor of
  // their accuracy; with no escapes this equals accuracy_weighted_goodput.
  const double escaped_share =
      report.completed > 0
          ? static_cast<double>(report.sdc_escaped_requests) /
                static_cast<double>(report.completed)
          : 0.0;
  report.delivered_accuracy_weighted_goodput =
      report.accuracy_weighted_goodput *
      (1.0 - escaped_share * (1.0 - kCorruptTop1Factor));
  report.deadline_miss_rate =
      1.0 - static_cast<double>(in_deadline_) /
                static_cast<double>(report.requests);
  double busy = 0.0;
  double available = 0.0;
  for (std::size_t i = 0; i < gpus_.size(); ++i) {
    busy += gpus_[i].busy;
    available +=
        duration_s_ -
        timelines_[static_cast<std::size_t>(gpu_instance_[i])].DownSeconds();
  }
  report.utilization = available > 0.0 ? busy / available : 0.0;
  return report;
}

std::uint32_t FaultedServingEngine::Fingerprint() const {
  // CRC over every input that shapes the trajectory: restoring a snapshot
  // into an engine built from different inputs must fail loudly.
  SnapshotSectionWriter w;
  w.PutF64Vector(arrivals_);
  for (const auto& [type_name, count] : config_.instances) {
    w.PutString(type_name);
    w.PutI64(count);
  }
  w.PutString(perf_.label);
  w.PutF64(perf_.ref_seconds_per_image.value());
  w.PutI64(perf_.kernel_count);
  w.PutF64(duration_s_);
  w.PutI64(policy_.max_batch);
  w.PutF64(policy_.max_wait_s);
  w.PutF64(policy_.deadline_s);
  w.PutI64(retry_.max_retries);
  w.PutF64(retry_.base_backoff_s);
  w.PutF64(retry_.backoff_multiplier);
  w.PutF64(retry_.max_backoff_s);
  w.PutU8(inflight_ == InflightPolicy::kDrop ? 1 : 0);
  w.PutF64(variant_accuracy_);
  w.PutI64(redundancy_.replicas);
  w.PutF64(redundancy_.hedge_after_s);
  w.PutI64(redundancy_.max_hedges);
  w.PutU8(static_cast<std::uint8_t>(sdc_.kind));
  w.PutF64(sdc_.scrub_interval_s);
  w.PutF64(sdc_.scrub_cost_s);
  w.PutF64(sdc_.sample_fraction);
  w.PutString(FaultScheduleCsv(faults_));
  return Crc32(w.Bytes());
}

std::string FaultedServingEngine::Checkpoint() const {
  SnapshotWriter writer(kServingSnapshotTag);

  SnapshotSectionWriter& meta = writer.AddSection("meta");
  meta.PutU32(fingerprint_);
  meta.PutF64(watermark_);
  meta.PutBool(halted_);
  meta.PutU64(next_arrival_);
  meta.PutI64(in_deadline_);
  meta.PutI64(sdc_corrupt_seen_);

  SnapshotSectionWriter& gpus = writer.AddSection("gpus");
  gpus.PutU64(gpus_.size());
  for (const GpuState& gpu : gpus_) {
    gpus.PutF64(gpu.free_at);
    gpus.PutF64(gpu.busy);
  }

  // `requeued_` is serialized in its exact std::push_heap order so the
  // restored vector replays subsequent heap operations identically.
  SnapshotSectionWriter& queue = writer.AddSection("queue");
  queue.PutU64(waiting_.size());
  for (const Pending& p : waiting_) {
    queue.PutF64(p.ready);
    queue.PutF64(p.arrival);
    queue.PutI64(p.attempts);
    queue.PutI64(p.id);
  }
  queue.PutU64(requeued_.size());
  for (const Pending& p : requeued_) {
    queue.PutF64(p.ready);
    queue.PutF64(p.arrival);
    queue.PutI64(p.attempts);
    queue.PutI64(p.id);
  }

  SnapshotSectionWriter& report = writer.AddSection("report");
  report.PutI64(report_.completed);
  report.PutI64(report_.dropped_deadline);
  report.PutI64(report_.dropped_failed);
  report.PutI64(report_.retries);
  report.PutI64(report_.deadline_misses);
  report.PutF64(report_.max_queue);
  report.PutBool(report_.stable);
  report.PutI64(report_.hedges);
  report.PutI64(report_.duplicate_completions);
  report.PutI64(report_.discarded_copies);
  report.PutF64(report_.duplicate_service_s);
  report.PutI64(report_.corrupted_batches);
  report.PutI64(report_.sdc_detected);
  report.PutI64(report_.sdc_escaped);
  report.PutI64(report_.sdc_escaped_requests);

  // Per-request redundancy bookkeeping. done_ packs to one byte per
  // request; the count vectors reuse the I64Vector framing.
  SnapshotSectionWriter& redundancy = writer.AddSection("redundancy");
  redundancy.PutU64(done_.size());
  for (const std::uint8_t d : done_) redundancy.PutU8(d);
  {
    std::vector<std::int64_t> wide(copies_live_.begin(), copies_live_.end());
    redundancy.PutI64Vector(wide);
    wide.assign(hedges_used_.begin(), hedges_used_.end());
    redundancy.PutI64Vector(wide);
  }

  writer.AddSection("latencies").PutF64Vector(latencies_);
  return writer.Serialize();
}

void FaultedServingEngine::Restore(const std::string& snapshot) {
  const SnapshotReader reader =
      SnapshotReader::Parse(snapshot, kServingSnapshotTag);

  SnapshotSectionReader meta = reader.Section("meta");
  const std::uint32_t fingerprint = meta.TakeU32();
  CCPERF_CHECK(fingerprint == fingerprint_,
               "serving snapshot does not match this run's inputs "
               "(trace, config, policies, fault schedule)");
  const double watermark = meta.TakeF64();
  const bool halted = meta.TakeBool();
  const std::uint64_t next_arrival = meta.TakeU64();
  const std::int64_t in_deadline = meta.TakeI64();
  const std::int64_t corrupt_seen = meta.TakeI64();
  meta.ExpectEnd();
  CCPERF_CHECK(corrupt_seen >= 0,
               "corrupt serving snapshot: negative corruption counter");
  CCPERF_CHECK(std::isfinite(watermark) && watermark >= 0.0,
               "corrupt serving snapshot: bad watermark");
  CCPERF_CHECK(next_arrival <= arrivals_.size(),
               "corrupt serving snapshot: arrival cursor ", next_arrival,
               " past trace of ", arrivals_.size());
  CCPERF_CHECK(in_deadline >= 0 &&
                   in_deadline <= static_cast<std::int64_t>(arrivals_.size()),
               "corrupt serving snapshot: in-deadline count out of range");

  SnapshotSectionReader gpus = reader.Section("gpus");
  const std::uint64_t gpu_count = gpus.TakeU64();
  CCPERF_CHECK(gpu_count == gpus_.size(),
               "corrupt serving snapshot: ", gpu_count, " GPUs for a fleet of ",
               gpus_.size());
  std::vector<GpuState> new_gpus(gpus_.size());
  for (GpuState& gpu : new_gpus) {
    gpu.free_at = gpus.TakeF64();
    gpu.busy = gpus.TakeF64();
  }
  gpus.ExpectEnd();

  const std::size_t trace_size = arrivals_.size();
  const auto take_pending = [trace_size](SnapshotSectionReader& r) {
    Pending p;
    p.ready = r.TakeF64();
    p.arrival = r.TakeF64();
    const std::int64_t attempts = r.TakeI64();
    CCPERF_CHECK(attempts >= 0 && attempts <= (1 << 20),
                 "corrupt serving snapshot: implausible attempt count ",
                 attempts);
    p.attempts = static_cast<int>(attempts);
    p.id = r.TakeI64();
    CCPERF_CHECK(p.id >= 0 && static_cast<std::size_t>(p.id) < trace_size,
                 "corrupt serving snapshot: request id ", p.id,
                 " outside trace of ", trace_size);
    return p;
  };
  // A request can have at most replicas + max_hedges live copies.
  const std::uint64_t copy_limit =
      static_cast<std::uint64_t>(arrivals_.size()) *
      static_cast<std::uint64_t>(redundancy_.replicas +
                                 redundancy_.max_hedges);
  SnapshotSectionReader queue = reader.Section("queue");
  const std::uint64_t waiting_count = queue.TakeU64();
  CCPERF_CHECK(waiting_count <= copy_limit,
               "corrupt serving snapshot: implausible waiting count ",
               waiting_count);
  std::deque<Pending> new_waiting;
  for (std::uint64_t i = 0; i < waiting_count; ++i) {
    new_waiting.push_back(take_pending(queue));
  }
  const std::uint64_t requeued_count = queue.TakeU64();
  CCPERF_CHECK(requeued_count <= copy_limit,
               "corrupt serving snapshot: implausible requeued count ",
               requeued_count);
  std::vector<Pending> new_requeued;
  new_requeued.reserve(static_cast<std::size_t>(requeued_count));
  for (std::uint64_t i = 0; i < requeued_count; ++i) {
    new_requeued.push_back(take_pending(queue));
  }
  queue.ExpectEnd();

  SnapshotSectionReader report = reader.Section("report");
  ServingReport new_report = report_;
  new_report.completed = report.TakeI64();
  new_report.dropped_deadline = report.TakeI64();
  new_report.dropped_failed = report.TakeI64();
  new_report.retries = report.TakeI64();
  new_report.deadline_misses = report.TakeI64();
  new_report.max_queue = report.TakeF64();
  new_report.stable = report.TakeBool();
  new_report.hedges = report.TakeI64();
  new_report.duplicate_completions = report.TakeI64();
  new_report.discarded_copies = report.TakeI64();
  new_report.duplicate_service_s = report.TakeF64();
  new_report.corrupted_batches = report.TakeI64();
  new_report.sdc_detected = report.TakeI64();
  new_report.sdc_escaped = report.TakeI64();
  new_report.sdc_escaped_requests = report.TakeI64();
  report.ExpectEnd();
  CCPERF_CHECK(new_report.completed >= 0 && new_report.dropped_deadline >= 0 &&
                   new_report.dropped_failed >= 0 && new_report.retries >= 0 &&
                   new_report.deadline_misses >= 0 && new_report.hedges >= 0 &&
                   new_report.duplicate_completions >= 0 &&
                   new_report.discarded_copies >= 0 &&
                   new_report.corrupted_batches >= 0 &&
                   new_report.sdc_detected >= 0 &&
                   new_report.sdc_escaped >= 0 &&
                   new_report.sdc_escaped_requests >= 0,
               "corrupt serving snapshot: negative report counter");
  CCPERF_CHECK(new_report.duplicate_service_s >= 0.0 &&
                   std::isfinite(new_report.duplicate_service_s),
               "corrupt serving snapshot: bad duplicate service time");

  SnapshotSectionReader redundancy = reader.Section("redundancy");
  const std::uint64_t request_count = redundancy.TakeU64();
  CCPERF_CHECK(request_count == arrivals_.size(),
               "corrupt serving snapshot: redundancy state for ",
               request_count, " requests, trace has ", arrivals_.size());
  std::vector<std::uint8_t> new_done(arrivals_.size());
  for (std::uint8_t& d : new_done) {
    d = redundancy.TakeU8();
    CCPERF_CHECK(d <= 1, "corrupt serving snapshot: done flag ",
                 static_cast<int>(d));
  }
  const std::vector<std::int64_t> wide_live = redundancy.TakeI64Vector();
  const std::vector<std::int64_t> wide_hedges = redundancy.TakeI64Vector();
  redundancy.ExpectEnd();
  CCPERF_CHECK(wide_live.size() == arrivals_.size() &&
                   wide_hedges.size() == arrivals_.size(),
               "corrupt serving snapshot: redundancy vector sizes ",
               wide_live.size(), "/", wide_hedges.size(), " for trace of ",
               arrivals_.size());
  const std::int64_t per_request_limit =
      static_cast<std::int64_t>(redundancy_.replicas) + redundancy_.max_hedges;
  std::vector<std::int32_t> new_live(arrivals_.size());
  std::vector<std::int32_t> new_hedges(arrivals_.size());
  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    CCPERF_CHECK(wide_live[i] >= 0 && wide_live[i] <= per_request_limit,
                 "corrupt serving snapshot: live copy count ", wide_live[i],
                 " outside [0, ", per_request_limit, "]");
    CCPERF_CHECK(wide_hedges[i] >= 0 &&
                     wide_hedges[i] <= redundancy_.max_hedges,
                 "corrupt serving snapshot: hedge count ", wide_hedges[i],
                 " exceeds policy limit ", redundancy_.max_hedges);
    new_live[i] = static_cast<std::int32_t>(wide_live[i]);
    new_hedges[i] = static_cast<std::int32_t>(wide_hedges[i]);
  }

  SnapshotSectionReader lat = reader.Section("latencies");
  std::vector<double> new_latencies = lat.TakeF64Vector();
  lat.ExpectEnd();
  CCPERF_CHECK(new_latencies.size() ==
                   static_cast<std::size_t>(new_report.completed),
               "corrupt serving snapshot: ", new_latencies.size(),
               " latency samples for ", new_report.completed, " completions");

  // All sections decoded and validated — commit atomically.
  gpus_ = std::move(new_gpus);
  waiting_ = std::move(new_waiting);
  requeued_ = std::move(new_requeued);
  next_arrival_ = static_cast<std::size_t>(next_arrival);
  latencies_ = std::move(new_latencies);
  copies_live_ = std::move(new_live);
  done_ = std::move(new_done);
  hedges_used_ = std::move(new_hedges);
  in_deadline_ = in_deadline;
  sdc_corrupt_seen_ = corrupt_seen;
  watermark_ = watermark;
  halted_ = halted;
  report_ = new_report;
}

std::vector<double> GenerateDiurnalArrivals(double mean_rate_per_s,
                                            double amplitude_per_s,
                                            double period_s,
                                            double duration_s, Rng& rng) {
  CCPERF_CHECK(mean_rate_per_s > 0.0, "mean rate must be positive");
  CCPERF_CHECK(amplitude_per_s >= 0.0 && amplitude_per_s <= mean_rate_per_s,
               "amplitude must be in [0, mean]");
  CCPERF_CHECK(period_s > 0.0 && duration_s > 0.0,
               "period and duration must be positive");
  // Thinning (Lewis-Shedler): propose at the peak rate, accept with
  // probability rate(t) / peak.
  const double peak = mean_rate_per_s + amplitude_per_s;
  std::vector<double> arrivals;
  double t = 0.0;
  for (;;) {
    t += -std::log(1.0 - rng.NextDouble()) / peak;
    if (t > duration_s) break;
    const double rate =
        mean_rate_per_s +
        amplitude_per_s * std::sin(2.0 * std::numbers::pi * t / period_s -
                                   std::numbers::pi / 2.0);
    if (rng.NextDouble() * peak < rate) arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace ccperf::cloud
