// CloudSimulator: the paper's analytical time/cost model (Eqs. 1-4) driven
// by the calibrated GPU device model.
//
//   T    = max over instances of per-instance inference time       (Eq. 2)
//   n    = W / b batches per GPU                                   (Eq. 3)
//   W_i  = W / |R| images per resource (equal split)               (Eq. 4)
//   C    = prorated T x sum of c_i                                 (Eq. 1)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/instance_catalog.h"
#include "cloud/resource_config.h"
#include "cloud/sdc.h"
#include "cloud/variant_perf.h"
#include "common/units.h"

namespace ccperf::cloud {

/// How inference images are split across the instances of a configuration.
enum class WorkloadSplit {
  kEqual,         // the paper's Eq. 4: W_i = W / |R|
  kProportional,  // extension: W_i proportional to instance throughput
};

/// Per-instance share of a run.
struct InstanceRun {
  std::string type;
  std::int64_t images = 0;
  Seconds seconds;
};

/// Predicted execution of one (variant, configuration, workload) triple.
struct RunEstimate {
  Seconds seconds;  // the paper's T (max over instances)
  Usd cost_usd;     // the paper's C (Eq. 1, per-second prorated)
  std::vector<InstanceRun> instances;
};

/// Run() under a silent-corruption detection policy (cloud/sdc.h):
/// detection machinery and redone (detected) work stretch T, which re-bills
/// through Eq. 1; undetected corruption discounts delivered accuracy.
struct SdcRunEstimate {
  RunEstimate base;          // the detection-free Eq. 1-4 estimate
  SdcAssessment assessment;  // at the fleet's mean SDC rate over base T
  Seconds seconds;           // base T stretched by (1 + time_overhead)
  Usd cost_usd;              // Eq. 1 re-prorated at the stretched T
  /// Multiply a variant's top-1 by this for delivered accuracy.
  double delivered_accuracy_factor = 1.0;
};

/// Analytical execution model over a catalog of instance types.
class CloudSimulator {
 public:
  explicit CloudSimulator(InstanceCatalog catalog);

  [[nodiscard]] const InstanceCatalog& Catalog() const { return catalog_; }

  /// Time for one batch of `batch` images on one GPU of `type`.
  [[nodiscard]] Seconds BatchSeconds(const InstanceType& type,
                                     const VariantPerf& perf,
                                     std::int64_t batch) const;

  /// Time for `images` images on one instance of `type`, splitting evenly
  /// across its GPUs. `batch` 0 picks the largest batch that fits the GPU.
  [[nodiscard]] Seconds InstanceSeconds(const InstanceType& type,
                                        const VariantPerf& perf,
                                        std::int64_t images,
                                        std::int64_t batch = 0) const;

  /// Full prediction for a configuration (Eqs. 1-4).
  [[nodiscard]] RunEstimate Run(const ResourceConfig& config,
                                const VariantPerf& perf, std::int64_t images,
                                WorkloadSplit split = WorkloadSplit::kEqual) const;

  /// Run() plus the SDC policy's cost/accuracy consequences. The fleet's
  /// per-instance sdc_rate_per_hour values (catalog) are averaged with
  /// instance-count weights — under the equal split each instance computes
  /// an equal share of the work, so the mean onset rate gives the expected
  /// corrupted-work fraction. kOff returns the Run() estimate untouched.
  [[nodiscard]] SdcRunEstimate RunWithSdc(
      const ResourceConfig& config, const VariantPerf& perf,
      std::int64_t images, const SdcPolicy& sdc,
      WorkloadSplit split = WorkloadSplit::kEqual) const;

  /// Images/second one instance sustains at saturation (used by the
  /// proportional split and by capacity planning examples).
  [[nodiscard]] double InstanceThroughput(const InstanceType& type,
                                          const VariantPerf& perf) const;

 private:
  InstanceCatalog catalog_;
};

}  // namespace ccperf::cloud
