// CloudSimulator: the paper's analytical time/cost model (Eqs. 1-4) driven
// by the calibrated GPU device model.
//
//   T    = max over instances of per-instance inference time       (Eq. 2)
//   n    = W / b batches per GPU                                   (Eq. 3)
//   W_i  = W / |R| images per resource (equal split)               (Eq. 4)
//   C    = prorated T x sum of c_i                                 (Eq. 1)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/instance_catalog.h"
#include "cloud/resource_config.h"
#include "cloud/variant_perf.h"

namespace ccperf::cloud {

/// How inference images are split across the instances of a configuration.
enum class WorkloadSplit {
  kEqual,         // the paper's Eq. 4: W_i = W / |R|
  kProportional,  // extension: W_i proportional to instance throughput
};

/// Per-instance share of a run.
struct InstanceRun {
  std::string type;
  std::int64_t images = 0;
  double seconds = 0.0;
};

/// Predicted execution of one (variant, configuration, workload) triple.
struct RunEstimate {
  double seconds = 0.0;   // the paper's T (max over instances)
  double cost_usd = 0.0;  // the paper's C (Eq. 1, per-second prorated)
  std::vector<InstanceRun> instances;
};

/// Analytical execution model over a catalog of instance types.
class CloudSimulator {
 public:
  explicit CloudSimulator(InstanceCatalog catalog);

  [[nodiscard]] const InstanceCatalog& Catalog() const { return catalog_; }

  /// Seconds for one batch of `batch` images on one GPU of `type`.
  [[nodiscard]] double BatchSeconds(const InstanceType& type,
                                    const VariantPerf& perf,
                                    std::int64_t batch) const;

  /// Seconds for `images` images on one instance of `type`, splitting evenly
  /// across its GPUs. `batch` 0 picks the largest batch that fits the GPU.
  [[nodiscard]] double InstanceSeconds(const InstanceType& type,
                                       const VariantPerf& perf,
                                       std::int64_t images,
                                       std::int64_t batch = 0) const;

  /// Full prediction for a configuration (Eqs. 1-4).
  [[nodiscard]] RunEstimate Run(const ResourceConfig& config,
                                const VariantPerf& perf, std::int64_t images,
                                WorkloadSplit split = WorkloadSplit::kEqual) const;

  /// Images/second one instance sustains at saturation (used by the
  /// proportional split and by capacity planning examples).
  [[nodiscard]] double InstanceThroughput(const InstanceType& type,
                                          const VariantPerf& perf) const;

 private:
  InstanceCatalog catalog_;
};

}  // namespace ccperf::cloud
