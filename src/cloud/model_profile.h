// ModelProfile: the measurement-driven inputs of the device time model.
//
// The paper measures per-layer execution time on EC2 and feeds those
// measurements into its analytical model; we encode the paper's published
// measurements (Figures 3-8) as calibration profiles, and can also derive a
// generic profile for arbitrary networks from static FLOPs analysis.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "nn/network.h"

namespace ccperf::cloud {

/// Calibration of one weighted layer's contribution to inference time.
struct LayerProfile {
  /// Fraction of the per-image reference time spent in this layer.
  double time_share = 0.0;
  /// Fraction of the layer's time that scales with weight density (the rest
  /// is im2col / memory traffic that pruning cannot remove; stride-4 conv1
  /// is mostly in this residue — paper Fig. 6(a)).
  double prunable_fraction = 0.85;
  /// Name of the upstream weighted layer whose filter pruning shrinks this
  /// layer's input channels (Li et al. remove the matching kernel planes);
  /// empty = fed by the raw input.
  std::string upstream;
};

/// Device-independent performance description of one CNN application.
struct ModelProfile {
  std::string model_name;
  /// Per-image time at full utilization on the K80 reference GPU, unpruned
  /// (CaffeNet: 19 min / 50,000 images; GoogLeNet: 13 min / 50,000).
  Seconds ref_seconds_per_image;
  /// Kernel launches per batch (one per layer) — dominates batch-1 latency.
  int kernel_count = 0;
  /// Weighted (prunable) layers in topological order.
  std::vector<std::string> layer_order;
  std::map<std::string, LayerProfile> layers;
  /// Share of time in weightless layers (LRN/pool/softmax) — never prunable.
  double residual_share = 0.0;

  /// Sum of layer time shares + residual (should be ~1; checked in tests).
  [[nodiscard]] double TotalShare() const;
};

/// Calibration for the paper's CaffeNet (Figs. 3, 4, 6, 8).
ModelProfile CaffeNetProfile();

/// Calibration for the paper's GoogLeNet (Figs. 4, 7).
ModelProfile GoogLeNetProfile();

/// Derive a profile for an arbitrary network from static cost analysis,
/// using a GEMM-efficiency heuristic (small patch / large stride convolve
/// inefficiently) to convert FLOPs into time shares.
ModelProfile GenericProfile(const nn::Network& net, Seconds ref_seconds_per_image);

}  // namespace ccperf::cloud
