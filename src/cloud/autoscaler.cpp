#include "cloud/autoscaler.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/threading.h"

namespace ccperf::cloud {

Autoscaler::Autoscaler(const ServingSimulator& serving,
                       std::string instance_type)
    : serving_(serving), instance_type_(std::move(instance_type)) {}

void ValidateAutoscalePolicy(const AutoscalePolicy& policy) {
  CCPERF_CHECK(policy.min_instances >= 1 &&
                   policy.max_instances >= policy.min_instances,
               "invalid instance bounds: min ", policy.min_instances,
               " max ", policy.max_instances);
  CCPERF_CHECK(policy.target_utilization > 0.0 &&
                   policy.target_utilization < 1.0,
               "target utilization must be in (0, 1)");
  CCPERF_CHECK(policy.miss_rate_step_up > 0.0 &&
                   policy.miss_rate_step_up <= 1.0,
               "miss_rate_step_up must be in (0, 1]");
}

AutoscaleResult Autoscaler::Run(
    const std::vector<std::vector<double>>& arrivals, double epoch_s,
    const VariantPerf& perf, const AutoscalePolicy& policy,
    const ServingPolicy& serving_policy) const {
  CCPERF_CHECK(!arrivals.empty(), "need at least one epoch");
  CCPERF_CHECK(epoch_s > 0.0, "epoch length must be positive");
  ValidateAutoscalePolicy(policy);
  ValidateServingPolicy(serving_policy);

  AutoscaleResult result;
  int instances = policy.min_instances;
  for (std::size_t epoch = 0; epoch < arrivals.size(); ++epoch) {
    ResourceConfig fleet;
    fleet.Add(instance_type_, instances);
    const ServingReport report = serving_.SimulateTrace(
        fleet, perf, arrivals[epoch], epoch_s, serving_policy);

    AutoscaleStep step;
    step.epoch = static_cast<int>(epoch);
    step.instances = instances;
    step.report = report;
    result.total_cost_usd += Usd(report.cost_per_hour_usd * epoch_s / 3600.0);
    result.worst_p99_s = std::max(result.worst_p99_s, report.p99_latency_s);
    result.always_stable = result.always_stable && report.stable;
    result.steps.push_back(std::move(step));

    // Reactive decision for the next epoch: size the fleet so that this
    // epoch's load would have run at the target utilization. An unstable
    // epoch (exploding queue) forces a maximal step up.
    const double observed = result.steps.back().report.utilization;
    int next = instances;
    if (!result.steps.back().report.stable) {
      next = policy.max_instances;
    } else if (observed > 0.0) {
      next = static_cast<int>(std::ceil(
          static_cast<double>(instances) * observed /
          policy.target_utilization));
    }
    instances = std::clamp(next, policy.min_instances, policy.max_instances);
  }
  return result;
}

AutoscaleResult Autoscaler::RunFaulted(
    const std::vector<std::vector<double>>& arrivals, double epoch_s,
    const VariantPerf& perf, const AutoscalePolicy& policy,
    const ServingPolicy& serving_policy, const RetryPolicy& retry,
    const FaultSchedule& faults, const CheckpointPolicy* checkpoint,
    CheckpointStats* checkpoint_stats,
    const RedundancyPolicy& redundancy) const {
  CCPERF_CHECK(!arrivals.empty(), "need at least one epoch");
  CCPERF_CHECK(epoch_s > 0.0, "epoch length must be positive");
  ValidateAutoscalePolicy(policy);
  ValidateServingPolicy(serving_policy);
  ValidateRetryPolicy(retry);
  ValidateRedundancyPolicy(redundancy);
  faults.Validate();
  if (checkpoint != nullptr) ValidateCheckpointPolicy(*checkpoint);

  AutoscaleResult result;
  int instances = policy.min_instances;
  std::int64_t total_requests = 0;
  std::int64_t total_in_deadline = 0;
  CheckpointStats aggregate;
  for (std::size_t epoch = 0; epoch < arrivals.size(); ++epoch) {
    ResourceConfig fleet;
    fleet.Add(instance_type_, instances);
    const FaultSchedule local = faults.Slice(
        static_cast<double>(epoch) * epoch_s,
        static_cast<double>(epoch + 1) * epoch_s);
    ServingReport report;
    if (checkpoint != nullptr) {
      CheckpointStats epoch_stats;
      report = serving_.SimulateFaultedCheckpointed(
          fleet, perf, arrivals[epoch], epoch_s, serving_policy, retry, local,
          *checkpoint, &epoch_stats, InflightPolicy::kRequeue,
          /*variant_accuracy=*/1.0, redundancy);
      aggregate.snapshots += epoch_stats.snapshots;
      aggregate.snapshot_overhead_s += epoch_stats.snapshot_overhead_s;
      aggregate.overhead_cost_usd += epoch_stats.overhead_cost_usd;
      if (epoch_stats.snapshots > 0) {
        // Report the last snapshot on the run's global clock.
        aggregate.last_snapshot_s = static_cast<double>(epoch) * epoch_s +
                                    epoch_stats.last_snapshot_s;
        aggregate.latest = std::move(epoch_stats.latest);
      }
      result.total_cost_usd += Usd(epoch_stats.overhead_cost_usd);
    } else {
      report = serving_.SimulateFaulted(
          fleet, perf, arrivals[epoch], epoch_s, serving_policy, retry, local,
          InflightPolicy::kRequeue, /*variant_accuracy=*/1.0, redundancy);
    }

    result.total_cost_usd += Usd(report.cost_per_hour_usd * epoch_s / 3600.0);
    result.worst_p99_s = std::max(result.worst_p99_s, report.p99_latency_s);
    result.always_stable = result.always_stable && report.stable;
    total_requests += report.requests;
    total_in_deadline += report.completed - report.deadline_misses;
    result.steps.push_back(
        {static_cast<int>(epoch), instances, report});

    // Reactive decision, fault-aware: utilization is already measured over
    // *available* GPU time, so a fleet shrunk by faults reads hot rather
    // than idle; heavy misses/drops force at least one extra instance.
    int next = instances;
    if (!report.stable) {
      next = policy.max_instances;
    } else {
      if (report.utilization > 0.0) {
        next = static_cast<int>(
            std::ceil(static_cast<double>(instances) * report.utilization /
                      policy.target_utilization));
      }
      if (report.deadline_miss_rate >= policy.miss_rate_step_up) {
        next = std::max(next, instances + 1);
      }
    }
    instances = std::clamp(next, policy.min_instances, policy.max_instances);
  }
  if (total_requests > 0) {
    result.slo_compliance = static_cast<double>(total_in_deadline) /
                            static_cast<double>(total_requests);
  }
  if (checkpoint_stats != nullptr) *checkpoint_stats = std::move(aggregate);
  return result;
}

AutoscaleResult Autoscaler::RunFaultedPlaced(
    const std::vector<std::vector<double>>& arrivals, double epoch_s,
    const VariantPerf& perf, const AutoscalePolicy& policy,
    const ServingPolicy& serving_policy, const RetryPolicy& retry,
    const FaultDomainTopology& topology, const CorrelatedSchedule& correlated,
    const FaultSchedule& independent, PlacementSpread spread,
    double cross_pool_premium_frac, const RedundancyPolicy& redundancy,
    const CheckpointPolicy* checkpoint,
    CheckpointStats* checkpoint_stats) const {
  ValidateAutoscalePolicy(policy);
  CCPERF_CHECK(cross_pool_premium_frac >= 0.0,
               "cross_pool_premium_frac must be >= 0, got ",
               cross_pool_premium_frac);
  // Place the fleet at its maximal size so instance indices are stable no
  // matter how the reactive controller resizes within [min, max]: instance
  // i always lives in the same pool, so lowering the correlated schedule
  // once up front stays valid for every epoch.
  FaultDomainTopology placed = topology;
  placed.PlaceInstances(policy.max_instances, spread);
  const FaultSchedule lowered = LowerCorrelatedSchedule(correlated, placed);
  const FaultSchedule merged = MergeFaultSchedules(independent, lowered);
  AutoscaleResult result =
      RunFaulted(arrivals, epoch_s, perf, policy, serving_policy, retry,
                 merged, checkpoint, checkpoint_stats, redundancy);
  if (cross_pool_premium_frac > 0.0) {
    const double price =
        serving_.Simulator().Catalog().Find(instance_type_)
            .price_per_hour.value();
    const int primary = placed.instance_domain[0];
    for (const AutoscaleStep& step : result.steps) {
      const int active = std::min(
          step.instances, static_cast<int>(placed.instance_domain.size()));
      int outside = 0;
      for (int i = 0; i < active; ++i) {
        if (placed.instance_domain[static_cast<std::size_t>(i)] != primary) {
          ++outside;
        }
      }
      result.total_cost_usd += Usd(static_cast<double>(outside) * price *
                                   cross_pool_premium_frac * epoch_s / 3600.0);
    }
  }
  return result;
}

PolicyRanking Autoscaler::RankFaultedPolicies(
    const std::vector<std::vector<double>>& arrivals, double epoch_s,
    const VariantPerf& perf, const std::vector<AutoscalePolicy>& policies,
    const ServingPolicy& serving_policy, const RetryPolicy& retry,
    const FaultSchedule& faults, double min_slo_compliance) const {
  CCPERF_CHECK(!policies.empty(), "need at least one candidate policy");
  CCPERF_CHECK(min_slo_compliance >= 0.0 && min_slo_compliance <= 1.0,
               "min_slo_compliance must be in [0, 1], got ",
               min_slo_compliance);
  PolicyRanking ranking;
  ranking.results.resize(policies.size());
  FirstErrorCollector errors;
  // One RunFaulted per task; slot i is owned by task i, so only the error
  // funnel needs a lock and the per-policy results stay schedule-independent.
  ParallelFor(
      0, policies.size(),
      [&](std::size_t i) {
        try {
          ranking.results[i] =
              RunFaulted(arrivals, epoch_s, perf, policies[i], serving_policy,
                         retry, faults);
        } catch (const CheckError& error) {
          errors.Record(i, detail::ConcatMessage("policy ", i, ": ",
                                                 error.what()));
        }
      },
      /*grain=*/1);
  errors.RethrowIfError();
  // Serial argmin with an index tie-break: the winner is a pure function of
  // the results, never of completion order.
  for (std::size_t i = 0; i < ranking.results.size(); ++i) {
    const AutoscaleResult& candidate = ranking.results[i];
    if (candidate.slo_compliance < min_slo_compliance) continue;
    if (ranking.best < 0 ||
        candidate.total_cost_usd <
            ranking.results[static_cast<std::size_t>(ranking.best)]
                .total_cost_usd) {
      ranking.best = static_cast<int>(i);
    }
  }
  return ranking;
}

}  // namespace ccperf::cloud
