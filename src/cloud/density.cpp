#include "cloud/density.h"

#include <vector>

#include "common/check.h"

namespace ccperf::cloud {

DensityMap DensityFromPlan(const ModelProfile& profile,
                           const pruning::PrunePlan& plan) {
  DensityMap map;
  const bool structural = plan.family == pruning::PrunerFamily::kL1Filter;
  for (const auto& name : profile.layer_order) {
    const double ratio = plan.RatioFor(name);
    CCPERF_CHECK(ratio >= 0.0 && ratio < 1.0, "ratio out of range for ", name);
    LayerDensity d;
    d.element = 1.0 - ratio;
    d.out_filter = structural ? 1.0 - ratio : 1.0;
    const auto it = profile.layers.find(name);
    CCPERF_CHECK(it != profile.layers.end(), "layer ", name,
                 " missing from profile ", profile.model_name);
    const std::string& upstream = it->second.upstream;
    if (!upstream.empty()) {
      const auto up = map.find(upstream);
      CCPERF_CHECK(up != map.end(), "upstream ", upstream,
                   " not processed before ", name,
                   " — profile layer_order is not topological");
      d.in_channel = up->second.out_filter;
    }
    map[name] = d;
  }
  // Layers the plan names but the profile does not know are an error: the
  // caller would silently lose their time contribution otherwise.
  for (const auto& [layer, ratio] : plan.layer_ratios) {
    if (ratio > 0.0) {
      CCPERF_CHECK(map.contains(layer), "plan prunes layer '", layer,
                   "' unknown to profile ", profile.model_name);
    }
  }
  return map;
}

DensityMap DensityFromNetwork(const nn::Network& net) {
  DensityMap map;
  // Channel density of each node's output (fraction of live channels).
  std::vector<double> channel_density(net.LayerCount(), 1.0);

  auto input_density = [&](std::size_t node) {
    const auto& ins = net.NodeInputs(node);
    if (ins.empty()) return 1.0;
    if (ins.size() == 1) {
      return ins[0] < 0 ? 1.0
                        : channel_density[static_cast<std::size_t>(ins[0])];
    }
    // Concat: average weighted by branch channel counts is what matters for
    // downstream compute; we approximate with the plain mean since branch
    // widths are similar in inception modules.
    double sum = 0.0;
    for (auto idx : ins) {
      sum += idx < 0 ? 1.0 : channel_density[static_cast<std::size_t>(idx)];
    }
    return sum / static_cast<double>(ins.size());
  };

  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    const nn::Layer& layer = net.LayerAt(i);
    const double in_density = input_density(i);
    if (!layer.HasWeights()) {
      channel_density[i] = in_density;
      continue;
    }
    const Tensor& w = layer.Weights();
    const std::int64_t filters = w.GetShape().Dim(0);
    const std::int64_t per_filter = w.NumElements() / filters;
    const auto data = w.Data();
    std::int64_t live = 0;
    for (std::int64_t f = 0; f < filters; ++f) {
      const float* row = data.data() + f * per_filter;
      for (std::int64_t k = 0; k < per_filter; ++k) {
        if (row[k] != 0.0f) {
          ++live;
          break;
        }
      }
    }
    LayerDensity d;
    d.element = layer.WeightDensity();
    d.out_filter = static_cast<double>(live) / static_cast<double>(filters);
    d.in_channel = in_density;
    map[layer.Name()] = d;
    channel_density[i] = d.out_filter;
  }
  return map;
}

}  // namespace ccperf::cloud
