#include "cloud/degradation.h"

#include <algorithm>

#include "common/check.h"

namespace ccperf::cloud {

void ValidateDegradationPolicy(const DegradationPolicy& policy) {
  CCPERF_CHECK(policy.degrade_miss_rate > 0.0 &&
                   policy.degrade_miss_rate <= 1.0,
               "degrade_miss_rate must be in (0, 1]");
  CCPERF_CHECK(policy.recover_miss_rate >= 0.0 &&
                   policy.recover_miss_rate < policy.degrade_miss_rate,
               "recover_miss_rate must be in [0, degrade_miss_rate)");
  CCPERF_CHECK(policy.recover_headroom > 0.0 &&
                   policy.recover_headroom <= 1.0,
               "recover_headroom must be in (0, 1]");
  CCPERF_CHECK(policy.recover_intervals >= 1,
               "recover_intervals must be >= 1");
}

DegradationController::DegradationController(const ServingSimulator& serving,
                                             ResourceConfig fleet)
    : serving_(serving), fleet_(std::move(fleet)) {
  CCPERF_CHECK(!fleet_.Empty(), "degradation fleet must not be empty");
}

DegradationResult DegradationController::Run(
    const std::vector<std::vector<double>>& arrivals, double interval_s,
    std::span<const DegradationRung> ladder, const DegradationPolicy& policy,
    const ServingPolicy& serving_policy, const RetryPolicy& retry,
    const FaultSchedule& faults) const {
  CCPERF_CHECK(!arrivals.empty(), "need at least one control interval");
  CCPERF_CHECK(interval_s > 0.0, "interval length must be positive");
  CCPERF_CHECK(!ladder.empty(), "degradation ladder must not be empty");
  for (const DegradationRung& rung : ladder) {
    CCPERF_CHECK(rung.accuracy > 0.0 && rung.accuracy <= 1.0,
                 "rung accuracy must be in (0, 1]");
  }
  ValidateDegradationPolicy(policy);
  ValidateServingPolicy(serving_policy);
  ValidateRetryPolicy(retry);
  faults.Validate();

  DegradationResult result;
  int rung = 0;
  int calm = 0;
  std::int64_t total_requests = 0;
  std::int64_t total_in_deadline = 0;
  double accuracy_weighted_completions = 0.0;
  std::int64_t total_completions = 0;

  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const FaultSchedule local = faults.Slice(
        static_cast<double>(i) * interval_s,
        static_cast<double>(i + 1) * interval_s);
    const auto& r = ladder[static_cast<std::size_t>(rung)];
    const ServingReport report = serving_.SimulateFaulted(
        fleet_, r.perf, arrivals[i], interval_s, serving_policy, retry,
        local, InflightPolicy::kRequeue, r.accuracy);

    result.total_cost_usd += report.cost_per_hour_usd * interval_s / 3600.0;
    result.worst_p99_s = std::max(result.worst_p99_s, report.p99_latency_s);
    result.always_stable = result.always_stable && report.stable;
    total_requests += report.requests;
    const auto in_deadline =
        report.completed - report.deadline_misses;
    total_in_deadline += in_deadline;
    accuracy_weighted_completions +=
        r.accuracy * static_cast<double>(report.completed);
    total_completions += report.completed;
    result.steps.push_back({static_cast<int>(i), rung, report});

    // Reactive rung decision for the next interval. Degrade on SLO stress
    // (misses, drops, or an exploding queue); recover only after
    // `recover_intervals` consecutive calm intervals — the hysteresis that
    // stops flapping when load sits near a threshold.
    const bool stressed =
        !report.stable || report.deadline_miss_rate >= policy.degrade_miss_rate;
    const bool calm_interval =
        report.stable &&
        report.deadline_miss_rate <= policy.recover_miss_rate &&
        report.utilization <= policy.recover_headroom;
    if (stressed) {
      calm = 0;
      if (rung + 1 < static_cast<int>(ladder.size())) {
        ++rung;
        ++result.switches;
      }
    } else if (calm_interval) {
      ++calm;
      if (calm >= policy.recover_intervals && rung > 0) {
        --rung;
        ++result.switches;
        calm = 0;
      }
    } else {
      calm = 0;
    }
  }

  if (total_requests > 0) {
    result.slo_compliance = static_cast<double>(total_in_deadline) /
                            static_cast<double>(total_requests);
  }
  if (total_completions > 0) {
    result.mean_accuracy = accuracy_weighted_completions /
                           static_cast<double>(total_completions);
  }
  return result;
}

}  // namespace ccperf::cloud
