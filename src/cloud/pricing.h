// Pay-per-use pricing with per-second prorating (paper §4.1.2: "the hourly
// price ... is pro-rated to the nearest second").
#pragma once

namespace ccperf::cloud {

/// Cost in USD of holding a resource priced at `price_per_hour` for
/// `seconds`, billed per started second.
double ProratedCost(double seconds, double price_per_hour);

}  // namespace ccperf::cloud
