// Pay-per-use pricing with per-second prorating (paper §4.1.2: "the hourly
// price ... is pro-rated to the nearest second").
#pragma once

#include "common/units.h"

namespace ccperf::cloud {

/// Cost of holding a resource priced at `price` for `duration`, billed per
/// started second (Eq. 1's prorating).
Usd ProratedCost(Seconds duration, UsdPerHour price);

}  // namespace ccperf::cloud
