// Chaos harness: rank failure-mitigation policy mixes across seeded
// correlated-incident scenarios. The paper prices configurations on the
// cost-accuracy plane assuming the fleet stays up; this module prices the
// *robustness* axis — what availability each mitigation (retry, degrade,
// checkpoint, replicate, hedge, spread) buys under reclaim waves, AZ
// outages and partitions, and what it costs per Eq. 1-4. Every cell of the
// policy x scenario grid is a serial, seeded simulation; the sweep fans
// cells across the global pool slot-per-task, so the grid is bitwise
// identical to running every cell serially.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/autoscaler.h"
#include "cloud/fault_domains.h"
#include "cloud/serving.h"

namespace ccperf::cloud {

/// One mitigation mix under test. Every knob composes: a "full mix" policy
/// can spread, replicate, hedge, checkpoint and degrade at once.
struct MitigationPolicy {
  std::string name;
  RetryPolicy retry;
  InflightPolicy inflight = InflightPolicy::kRequeue;
  RedundancyPolicy redundancy;                     // replication + hedging
  PlacementSpread spread = PlacementSpread::kPack;
  /// Serve the sweep's degraded variant (ChaosConfig::degraded_perf at
  /// degraded_accuracy) instead of the primary one — graceful degradation
  /// as a failure response.
  bool degrade = false;
  /// Run checkpointed, billing snapshot overhead into cost.
  bool checkpointed = false;
  CheckpointPolicy checkpoint;
};

/// Throws CheckError when any constituent policy is invalid or the name is
/// empty.
void ValidateMitigationPolicy(const MitigationPolicy& policy);

/// One seeded incident class: correlated domain events plus independent
/// per-instance background faults, both drawn deterministically from
/// `seed` (the independent stream uses a fixed derivation of it, so the
/// two processes never share draws).
struct IncidentScenario {
  std::string name;
  CorrelatedFaultModel correlated;
  FaultModel independent;
  std::uint64_t seed = 0;
};

/// Outcome of one policy x scenario cell.
struct ChaosOutcome {
  ServingReport report;
  CheckpointStats checkpoint;     // zeros unless the policy checkpoints
  double availability = 0.0;      // completed / requests
  double cost_usd = 0.0;          // serving + spread premium + snapshots
  /// USD per 1000 in-deadline completions; +inf when nothing lands
  /// in-deadline (an unavailable configuration is infinitely expensive
  /// per unit of good work).
  double cost_per_kilo_good = 0.0;
};

/// The full grid plus per-policy aggregates. `order` ranks policy indices:
/// highest mean availability first, mean cost breaking ties (cheaper
/// wins), then index — a pure function of the outcomes.
struct ChaosRanking {
  std::vector<std::vector<ChaosOutcome>> outcomes;  // [policy][scenario]
  std::vector<double> mean_availability;            // per policy
  std::vector<double> mean_cost_usd;                // per policy
  std::vector<double> mean_cost_per_kilo_good;      // per policy
  std::vector<int> order;                           // best policy first
};

/// Shared workload every cell replays: one arrival trace, one serving
/// policy, one primary variant — so cells differ only in mitigation and
/// incident, never in offered load.
struct ChaosConfig {
  VariantPerf perf;
  /// Variant served by policies with `degrade` set. Must be populated
  /// whenever such a policy is in the sweep.
  VariantPerf degraded_perf;
  double degraded_accuracy = 1.0;
  std::vector<double> arrivals;  // arrival instants, seconds
  double duration_s = 0.0;
  ServingPolicy serving;
};

/// Chaos sweep over a fixed fleet placed into a fault-domain topology.
class ChaosSweep {
 public:
  /// `serving` must outlive the sweep. `topology` supplies the domain tree
  /// (instance placement is redone per policy, per its spread); `fleet` is
  /// the configuration under test. Instances placed outside the primary
  /// pool bill `cross_pool_premium_frac` of the fleet's per-instance share
  /// extra — spreading is not free.
  ChaosSweep(const ServingSimulator& serving, FaultDomainTopology topology,
             ResourceConfig fleet, double cross_pool_premium_frac = 0.0);

  /// One cell, serial: place per the policy's spread, draw the scenario's
  /// correlated + independent schedules from its seed, lower, merge, and
  /// simulate. Same (policy, scenario, config) always returns the same
  /// bytes.
  [[nodiscard]] ChaosOutcome RunOne(const MitigationPolicy& policy,
                                    const IncidentScenario& scenario,
                                    const ChaosConfig& config) const;

  /// The whole grid, one RunOne per task on the global pool (grain 1, slot
  /// per cell — bitwise identical to a serial double loop). Validation
  /// errors rethrow deterministically (lowest flat index) after the sweep.
  [[nodiscard]] ChaosRanking Rank(
      const std::vector<MitigationPolicy>& policies,
      const std::vector<IncidentScenario>& scenarios,
      const ChaosConfig& config) const;

  [[nodiscard]] const FaultDomainTopology& Topology() const {
    return topology_;
  }
  [[nodiscard]] const ResourceConfig& Fleet() const { return fleet_; }

 private:
  const ServingSimulator& serving_;
  FaultDomainTopology topology_;
  ResourceConfig fleet_;
  double cross_pool_premium_frac_ = 0.0;
};

/// Result of RunMirroredRestoreDrill.
struct MirroredRestoreDrill {
  ServingReport report;           // the restored engine's finished report
  double restored_watermark = 0.0;  // watermark of the snapshot restored
  int snapshots = 0;              // snapshots published before the kill
};

/// Cross-domain failover drill: run a faulted engine publishing mirrored
/// snapshots into `vault` under `mirror_domains` at every checkpoint
/// instant, "kill" it at the first snapshot with watermark >= `kill_at_s`
/// (or at completion), then restore a fresh engine from the newest
/// snapshot still reachable when `unreachable_at_kill` domains are
/// partitioned away and run it to completion. The finished report is
/// bitwise identical to an uninterrupted run of the same inputs — the
/// invariant the ISSUE's kill/restore acceptance test pins down. Throws
/// CheckError when no snapshot was published before the kill or every
/// mirror is unreachable.
MirroredRestoreDrill RunMirroredRestoreDrill(
    const ServingSimulator& serving, const ResourceConfig& config,
    const VariantPerf& perf, const std::vector<double>& arrivals,
    double duration_s, const ServingPolicy& policy, const RetryPolicy& retry,
    const RedundancyPolicy& redundancy, const FaultSchedule& faults,
    const CheckpointPolicy& checkpoint,
    const std::vector<int>& mirror_domains,
    const std::vector<int>& unreachable_at_kill, double kill_at_s,
    SnapshotVault& vault, const std::string& run_name);

}  // namespace ccperf::cloud
