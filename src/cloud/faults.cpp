#include "cloud/faults.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"

namespace ccperf::cloud {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Strict double parse: the whole (trimmed) cell must be one finite number.
double ParseDoubleCell(const std::string& cell, const char* what) {
  const auto first = cell.find_first_not_of(" \t\r");
  CCPERF_CHECK(first != std::string::npos, "empty ", what, " cell");
  const auto last = cell.find_last_not_of(" \t\r");
  const std::string body = cell.substr(first, last - first + 1);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(body.c_str(), &end);
  CCPERF_CHECK(end == body.c_str() + body.size() && errno == 0,
               "malformed ", what, " value '", cell, "'");
  CCPERF_CHECK(std::isfinite(value), what, " must be finite, got '", cell,
               "'");
  return value;
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

std::string Trimmed(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

FaultKind ParseKind(const std::string& cell) {
  const std::string name = Trimmed(cell);
  if (name == "preemption") return FaultKind::kPreemption;
  if (name == "crash") return FaultKind::kCrash;
  if (name == "slowdown") return FaultKind::kSlowdown;
  if (name == "domain-outage") return FaultKind::kDomainOutage;
  if (name == "reclaim-wave") return FaultKind::kReclaimWave;
  if (name == "partition") return FaultKind::kPartition;
  if (name == "silent-corruption") return FaultKind::kSilentCorruption;
  CCPERF_CHECK(false, "unknown fault kind '", cell, "'");
  return FaultKind::kCrash;  // unreachable
}

void ValidateEvent(const FaultEvent& event) {
  CCPERF_CHECK(event.instance >= 0, "fault instance index must be >= 0, got ",
               event.instance);
  CCPERF_CHECK(event.start_s >= 0.0 && std::isfinite(event.start_s),
               "fault start must be finite and >= 0, got ", event.start_s);
  if (!FaultKindIsPermanent(event.kind)) {
    CCPERF_CHECK(event.duration_s > 0.0 && std::isfinite(event.duration_s),
                 FaultKindName(event.kind),
                 " duration must be positive, got ", event.duration_s);
  } else {
    CCPERF_CHECK(event.duration_s >= 0.0, FaultKindName(event.kind),
                 " duration must be >= 0 (it is ignored)");
  }
  if (event.kind == FaultKind::kSlowdown) {
    CCPERF_CHECK(event.slowdown_factor > 1.0 &&
                     std::isfinite(event.slowdown_factor),
                 "slowdown factor must be > 1, got ", event.slowdown_factor);
  } else {
    // The factor is ignored for every other kind, but a NaN/Inf smuggled
    // through a replayed trace must still be rejected: serialization
    // round-trips it and a later consumer might not ignore it.
    CCPERF_CHECK(std::isfinite(event.slowdown_factor),
                 FaultKindName(event.kind),
                 " slowdown factor must be finite, got ",
                 event.slowdown_factor);
  }
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPreemption:
      return "preemption";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kSlowdown:
      return "slowdown";
    case FaultKind::kDomainOutage:
      return "domain-outage";
    case FaultKind::kReclaimWave:
      return "reclaim-wave";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kSilentCorruption:
      return "silent-corruption";
  }
  return "?";
}

bool FaultKindIsPermanent(FaultKind kind) {
  return kind == FaultKind::kPreemption || kind == FaultKind::kReclaimWave;
}

void FaultSchedule::Validate() const {
  double previous = 0.0;
  for (const FaultEvent& event : events) {
    ValidateEvent(event);
    CCPERF_CHECK(event.start_s >= previous,
                 "fault trace must be start-sorted: ", event.start_s,
                 " after ", previous);
    previous = event.start_s;
  }
}

FaultSchedule FaultSchedule::Slice(double t0, double t1) const {
  CCPERF_CHECK(t0 >= 0.0 && t1 > t0, "invalid slice window [", t0, ", ", t1,
               ")");
  FaultSchedule out;
  for (const FaultEvent& event : events) {
    if (event.start_s >= t1) break;
    double end = FaultKindIsPermanent(event.kind)
                     ? kInf
                     : event.start_s + event.duration_s;
    if (end <= t0) continue;
    FaultEvent local = event;
    local.start_s = std::max(event.start_s, t0) - t0;
    if (!FaultKindIsPermanent(event.kind)) {
      // Clip to the window; a crash spanning the boundary keeps the
      // instance down to (at least) the window edge.
      local.duration_s = std::min(end, t1) - (local.start_s + t0);
      if (local.duration_s <= 0.0) continue;
    }
    out.events.push_back(local);
  }
  // Clipping can reorder events that started before the window relative to
  // ones inside it; restore start order (stable to stay deterministic).
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.start_s < b.start_s;
                   });
  return out;
}

FaultSchedule GenerateFaultSchedule(const FaultModel& model, int instances,
                                    double duration_s, Rng& rng) {
  CCPERF_CHECK(instances >= 1, "need at least one instance");
  CCPERF_CHECK(duration_s > 0.0, "duration must be positive");
  CCPERF_CHECK(model.preemption_rate >= 0.0 && model.crash_rate >= 0.0 &&
                   model.slowdown_rate >= 0.0 && model.sdc_rate >= 0.0,
               "fault rates must be >= 0");
  CCPERF_CHECK(model.restart_s > 0.0, "restart delay must be positive");
  CCPERF_CHECK(model.slowdown_s > 0.0 && model.slowdown_factor > 1.0,
               "slowdown window needs positive duration and factor > 1");
  CCPERF_CHECK(model.sdc_window_s > 0.0,
               "silent-corruption residency window must be positive");

  FaultSchedule schedule;
  const auto exponential = [&rng](double rate_per_hour) {
    return -std::log(1.0 - rng.NextDouble()) / (rate_per_hour / 3600.0);
  };
  for (int i = 0; i < instances; ++i) {
    // Spot reclaim: only the first event matters — the instance is gone.
    if (model.preemption_rate > 0.0) {
      const double t = exponential(model.preemption_rate);
      if (t < duration_s) {
        schedule.events.push_back({FaultKind::kPreemption, i, t, 0.0, 1.0});
      }
    }
    if (model.crash_rate > 0.0) {
      for (double t = exponential(model.crash_rate); t < duration_s;
           t += model.restart_s + exponential(model.crash_rate)) {
        schedule.events.push_back(
            {FaultKind::kCrash, i, t, model.restart_s, 1.0});
      }
    }
    if (model.slowdown_rate > 0.0) {
      for (double t = exponential(model.slowdown_rate); t < duration_s;
           t += model.slowdown_s + exponential(model.slowdown_rate)) {
        schedule.events.push_back({FaultKind::kSlowdown, i, t,
                                   model.slowdown_s,
                                   model.slowdown_factor});
      }
    }
    if (model.sdc_rate > 0.0) {
      for (double t = exponential(model.sdc_rate); t < duration_s;
           t += model.sdc_window_s + exponential(model.sdc_rate)) {
        schedule.events.push_back({FaultKind::kSilentCorruption, i, t,
                                   model.sdc_window_s, 1.0});
      }
    }
  }
  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.start_s != b.start_s) return a.start_s < b.start_s;
                     return a.instance < b.instance;
                   });
  return schedule;
}

FaultSchedule MergeFaultSchedules(const FaultSchedule& a,
                                  const FaultSchedule& b) {
  a.Validate();
  b.Validate();
  FaultSchedule out;
  out.events.reserve(a.events.size() + b.events.size());
  // Two-pointer merge keeps the result start-sorted; <= makes the merge
  // stable with `a` first on ties, so composing the same pair of traces
  // always yields the same byte-identical schedule.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.events.size() && j < b.events.size()) {
    if (a.events[i].start_s <= b.events[j].start_s) {
      out.events.push_back(a.events[i++]);
    } else {
      out.events.push_back(b.events[j++]);
    }
  }
  out.events.insert(out.events.end(),
                    a.events.begin() + static_cast<std::ptrdiff_t>(i),
                    a.events.end());
  out.events.insert(out.events.end(),
                    b.events.begin() + static_cast<std::ptrdiff_t>(j),
                    b.events.end());
  return out;
}

FaultSchedule ParseFaultScheduleCsv(std::istream& in) {
  std::string line;
  CCPERF_CHECK(static_cast<bool>(std::getline(in, line)),
               "fault CSV is empty");
  CCPERF_CHECK(Trimmed(line) == "kind,instance,start_s,duration_s,"
                                "slowdown_factor",
               "unexpected fault CSV header '", line, "'");
  FaultSchedule schedule;
  // Line numbers are 1-based and include the header, so an error message
  // points at the row an editor would show.
  std::size_t line_number = 1;
  std::size_t previous_row = 0;
  double previous_start = 0.0;
  while (std::getline(in, line)) {
    ++line_number;
    if (Trimmed(line).empty()) continue;
    FaultEvent event;
    try {
      const std::vector<std::string> cells = SplitCsvLine(line);
      CCPERF_CHECK(cells.size() == 5, "row needs 5 cells, got ",
                   cells.size());
      event.kind = ParseKind(cells[0]);
      const double instance = ParseDoubleCell(cells[1], "instance");
      CCPERF_CHECK(instance >= 0.0 && instance < 1e9 &&
                       instance == std::floor(instance),
                   "instance index must be a small non-negative integer, "
                   "got '",
                   cells[1], "'");
      event.instance = static_cast<int>(instance);
      event.start_s = ParseDoubleCell(cells[2], "start_s");
      event.duration_s = ParseDoubleCell(cells[3], "duration_s");
      event.slowdown_factor = ParseDoubleCell(cells[4], "slowdown_factor");
      ValidateEvent(event);
      CCPERF_CHECK(event.start_s >= previous_start,
                   "events must be start-sorted: start_s ", event.start_s,
                   " is before ", previous_start, " on line ", previous_row);
    } catch (const CheckError& error) {
      CCPERF_CHECK(false, "fault CSV line ", line_number, " ('",
                   Trimmed(line), "'): ", error.what());
    }
    previous_row = line_number;
    previous_start = event.start_s;
    schedule.events.push_back(event);
  }
  CCPERF_CHECK(!in.bad(), "fault CSV stream failed mid-read (truncated or "
                          "unreadable input)");
  schedule.Validate();
  return schedule;
}

FaultSchedule ParseFaultScheduleCsv(const std::string& text) {
  std::stringstream stream(text);
  return ParseFaultScheduleCsv(stream);
}

FaultSchedule LoadFaultScheduleFromFile(const std::string& path) {
  std::ifstream in(path);
  CCPERF_CHECK(in.good(), "cannot open fault schedule '", path, "'");
  try {
    return ParseFaultScheduleCsv(in);
  } catch (const CheckError& error) {
    CCPERF_CHECK(false, "fault schedule '", path, "': ", error.what());
  }
}

std::string FaultScheduleCsv(const FaultSchedule& schedule) {
  std::ostringstream out;
  // max_digits10 so that parsing the CSV reproduces the schedule exactly.
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "kind,instance,start_s,duration_s,slowdown_factor\n";
  for (const FaultEvent& event : schedule.events) {
    out << FaultKindName(event.kind) << ',' << event.instance << ','
        << event.start_s << ',' << event.duration_s << ','
        << event.slowdown_factor << '\n';
  }
  return out.str();
}

const FaultSchedule& FaultScheduleCache::Get(const FaultModel& model,
                                             int instances, double duration_s,
                                             std::uint64_t seed) {
  const Key key{model.preemption_rate,
                model.crash_rate,
                model.restart_s,
                model.slowdown_rate,
                model.slowdown_s,
                model.slowdown_factor,
                model.sdc_rate,
                model.sdc_window_s,
                instances,
                duration_s,
                seed};
  {
    MutexLock lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return *it->second;
    }
  }
  // Generate outside the lock: schedules over long horizons are not cheap,
  // and holding the mutex here would serialize every first-touch sweep.
  // Concurrent misses on one key do redundant work but produce identical
  // schedules; emplace keeps whichever landed first.
  Rng rng(seed);
  auto generated = std::make_unique<const FaultSchedule>(
      GenerateFaultSchedule(model, instances, duration_s, rng));
  MutexLock lock(mutex_);
  ++misses_;
  const auto [it, inserted] = cache_.emplace(key, std::move(generated));
  return *it->second;
}

std::size_t FaultScheduleCache::Size() const {
  MutexLock lock(mutex_);
  return cache_.size();
}

std::size_t FaultScheduleCache::Hits() const {
  MutexLock lock(mutex_);
  return hits_;
}

std::size_t FaultScheduleCache::Misses() const {
  MutexLock lock(mutex_);
  return misses_;
}

InstanceTimeline::InstanceTimeline(const FaultSchedule& schedule,
                                   int instance, double horizon_s)
    : horizon_s_(horizon_s) {
  CCPERF_CHECK(horizon_s > 0.0, "horizon must be positive");
  schedule.Validate();
  std::vector<Interval> raw;
  std::vector<Interval> raw_partition;
  std::vector<Interval> raw_corrupt;
  for (const FaultEvent& event : schedule.events) {
    if (event.instance != instance) continue;
    switch (event.kind) {
      case FaultKind::kPreemption:
      case FaultKind::kReclaimWave:
        raw.push_back({event.start_s, kInf});
        break;
      case FaultKind::kCrash:
      case FaultKind::kDomainOutage:
        raw.push_back({event.start_s, event.start_s + event.duration_s});
        break;
      case FaultKind::kPartition:
        // Down like a crash, but the window is also remembered separately:
        // PartitionedAt() lets the serving engine drop (not requeue) work
        // that was in flight when the domain became unreachable.
        raw.push_back({event.start_s, event.start_s + event.duration_s});
        raw_partition.push_back(
            {event.start_s, event.start_s + event.duration_s});
        break;
      case FaultKind::kSlowdown:
        slow_.push_back({event.start_s, event.start_s + event.duration_s,
                         event.slowdown_factor});
        break;
      case FaultKind::kSilentCorruption:
        // NOT a down interval: the instance keeps serving, silently wrong.
        raw_corrupt.push_back(
            {event.start_s, event.start_s + event.duration_s});
        break;
    }
  }
  // Merge overlapping down intervals (already start-sorted).
  const auto merge = [](const std::vector<Interval>& in,
                        std::vector<Interval>& out) {
    for (const Interval& interval : in) {
      if (!out.empty() && interval.start <= out.back().end) {
        out.back().end = std::max(out.back().end, interval.end);
      } else {
        out.push_back(interval);
      }
    }
  };
  merge(raw, down_);
  merge(raw_partition, partition_);
  merge(raw_corrupt, corrupt_);
}

bool InstanceTimeline::UpAt(double t) const {
  for (const Interval& d : down_) {
    if (t < d.start) return true;
    if (t < d.end) return false;
  }
  return true;
}

double InstanceTimeline::NextUpAt(double t) const {
  for (const Interval& d : down_) {
    if (t < d.start) return t;
    if (t < d.end) return d.end;  // +inf for a preemption
  }
  return t;
}

double InstanceTimeline::NextDownAfter(double t) const {
  for (const Interval& d : down_) {
    if (d.start > t) return d.start;
  }
  return kInf;
}

double InstanceTimeline::SlowdownAt(double t) const {
  double factor = 1.0;
  for (const SlowWindow& w : slow_) {
    if (t >= w.start && t < w.end) factor = std::max(factor, w.factor);
  }
  return factor;
}

bool InstanceTimeline::PartitionedAt(double t) const {
  for (const Interval& p : partition_) {
    if (t < p.start) return false;
    if (t < p.end) return true;
  }
  return false;
}

bool InstanceTimeline::CorruptedAt(double t) const {
  for (const Interval& c : corrupt_) {
    if (t < c.start) return false;
    if (t < c.end) return true;
  }
  return false;
}

double InstanceTimeline::DownSeconds() const {
  double total = 0.0;
  for (const Interval& d : down_) {
    const double end = std::min(d.end, horizon_s_);
    if (end > d.start) total += end - std::min(d.start, horizon_s_);
  }
  return total;
}

}  // namespace ccperf::cloud
