// ResourceConfig: a multiset of cloud instances — the paper's R — plus
// enumeration of the configuration space explored in Figures 9 and 10.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cloud/instance_catalog.h"

namespace ccperf::cloud {

/// Multiset of instance types, e.g. {p2.xlarge x2, p2.8xlarge x1}.
struct ResourceConfig {
  /// (type name, count) with count >= 1; order follows construction.
  std::vector<std::pair<std::string, int>> instances;

  /// Number of resource instances — the paper's |R|.
  [[nodiscard]] int TotalInstances() const;

  /// "2xp2.xlarge+1xp2.8xlarge"; "(empty)" for no instances.
  [[nodiscard]] std::string ToString() const;

  /// Append one instance of `type` (merging with an existing entry).
  void Add(const std::string& type, int count = 1);

  [[nodiscard]] bool Empty() const { return instances.empty(); }
};

/// Sum of hourly prices over all instances (the paper's sum of c_i).
UsdPerHour PricePerHour(const ResourceConfig& config,
                        const InstanceCatalog& catalog);

/// Total GPU count across the configuration.
int TotalGpus(const ResourceConfig& config, const InstanceCatalog& catalog);

/// Every non-empty combination of 0..max_per_type instances of each type —
/// (max_per_type+1)^|types| - 1 configurations.
std::vector<ResourceConfig> EnumerateConfigs(
    std::span<const InstanceType> types, int max_per_type);

}  // namespace ccperf::cloud
