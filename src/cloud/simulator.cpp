#include "cloud/simulator.h"

#include <algorithm>
#include <cmath>

#include "cloud/pricing.h"
#include "common/check.h"

namespace ccperf::cloud {

CloudSimulator::CloudSimulator(InstanceCatalog catalog)
    : catalog_(std::move(catalog)) {}

Seconds CloudSimulator::BatchSeconds(const InstanceType& type,
                                     const VariantPerf& perf,
                                     std::int64_t batch) const {
  CCPERF_CHECK(batch >= 1, "batch must be >= 1");
  const GpuSpec& gpu = catalog_.Gpu(type.gpu);
  CCPERF_CHECK(batch <= gpu.max_batch, "batch ", batch,
               " exceeds GPU capacity ", gpu.max_batch, " of ", type.name);
  const Seconds launch =
      static_cast<double>(perf.kernel_count) * gpu.kernel_launch;
  const Seconds compute = static_cast<double>(batch) *
                          perf.ref_seconds_per_image /
                          (gpu.relative_speed * gpu.Utilization(batch));
  return launch + compute;
}

Seconds CloudSimulator::InstanceSeconds(const InstanceType& type,
                                        const VariantPerf& perf,
                                        std::int64_t images,
                                        std::int64_t batch) const {
  CCPERF_CHECK(images >= 0, "negative image count");
  if (images == 0) return Seconds(0.0);
  const GpuSpec& gpu = catalog_.Gpu(type.gpu);
  // Images per GPU: the instance's GPUs work in parallel on equal shares.
  const std::int64_t per_gpu =
      (images + type.gpus - 1) / static_cast<std::int64_t>(type.gpus);
  const std::int64_t b =
      batch > 0 ? std::min(batch, gpu.max_batch)
                : std::min(per_gpu, gpu.max_batch);
  const std::int64_t full_batches = per_gpu / b;
  const std::int64_t tail = per_gpu % b;
  Seconds seconds = static_cast<double>(full_batches) *
                    BatchSeconds(type, perf, b);
  if (tail > 0) seconds += BatchSeconds(type, perf, tail);
  return seconds;
}

double CloudSimulator::InstanceThroughput(const InstanceType& type,
                                          const VariantPerf& perf) const {
  const GpuSpec& gpu = catalog_.Gpu(type.gpu);
  const std::int64_t b = gpu.max_batch;
  return static_cast<double>(b * type.gpus) /
         BatchSeconds(type, perf, b).value();
}

RunEstimate CloudSimulator::Run(const ResourceConfig& config,
                                const VariantPerf& perf, std::int64_t images,
                                WorkloadSplit split) const {
  CCPERF_CHECK(!config.Empty(), "empty resource configuration");
  CCPERF_CHECK(images >= 1, "need at least one image");

  // Expand to individual resource instances (the paper's R with |R| items).
  std::vector<const InstanceType*> resources;
  for (const auto& [type, count] : config.instances) {
    const InstanceType& t = catalog_.Find(type);
    for (int i = 0; i < count; ++i) resources.push_back(&t);
  }
  const auto n = static_cast<std::int64_t>(resources.size());

  // Workload distribution.
  std::vector<std::int64_t> shares(resources.size(), 0);
  if (split == WorkloadSplit::kEqual) {
    // Eq. 4: W_i = W / |R|, remainder to the first instances.
    const std::int64_t base = images / n;
    const std::int64_t rem = images % n;
    for (std::int64_t i = 0; i < n; ++i) {
      shares[static_cast<std::size_t>(i)] = base + (i < rem ? 1 : 0);
    }
  } else {
    // Proportional to saturated throughput; remainder to the fastest.
    std::vector<double> thr(resources.size());
    double total_thr = 0.0;
    for (std::size_t i = 0; i < resources.size(); ++i) {
      thr[i] = InstanceThroughput(*resources[i], perf);
      total_thr += thr[i];
    }
    std::int64_t assigned = 0;
    for (std::size_t i = 0; i < resources.size(); ++i) {
      shares[i] = static_cast<std::int64_t>(
          std::floor(static_cast<double>(images) * thr[i] / total_thr));
      assigned += shares[i];
    }
    const std::size_t fastest = static_cast<std::size_t>(
        std::max_element(thr.begin(), thr.end()) - thr.begin());
    shares[fastest] += images - assigned;
  }

  RunEstimate estimate;
  for (std::size_t i = 0; i < resources.size(); ++i) {
    InstanceRun run;
    run.type = resources[i]->name;
    run.images = shares[i];
    run.seconds = InstanceSeconds(*resources[i], perf, shares[i]);
    estimate.seconds = std::max(estimate.seconds, run.seconds);
    estimate.instances.push_back(std::move(run));
  }
  // Eq. 1: every resource is billed until the configuration finishes.
  for (const InstanceType* t : resources) {
    estimate.cost_usd += ProratedCost(estimate.seconds, t->price_per_hour);
  }
  return estimate;
}

SdcRunEstimate CloudSimulator::RunWithSdc(const ResourceConfig& config,
                                          const VariantPerf& perf,
                                          std::int64_t images,
                                          const SdcPolicy& sdc,
                                          WorkloadSplit split) const {
  SdcRunEstimate out;
  out.base = Run(config, perf, images, split);
  if (sdc.kind == SdcPolicyKind::kOff) {
    // SDC not modeled: the estimate is the Run() estimate, bitwise.
    out.seconds = out.base.seconds;
    out.cost_usd = out.base.cost_usd;
    return out;
  }
  RatePerHour rate_sum;
  int total = 0;
  for (const auto& [type, count] : config.instances) {
    rate_sum += catalog_.Find(type).sdc_rate_per_hour * count;
    total += count;
  }
  const RatePerHour mean_rate = rate_sum / static_cast<double>(total);
  out.assessment = AssessSdc(sdc, mean_rate, out.base.seconds);
  out.seconds = out.base.seconds * (1.0 + out.assessment.time_overhead);
  for (const auto& [type, count] : config.instances) {
    out.cost_usd += ProratedCost(out.seconds,
                                 catalog_.Find(type).price_per_hour) *
                    count;
  }
  out.delivered_accuracy_factor =
      1.0 - out.assessment.escape_fraction * (1.0 - kCorruptTop1Factor);
  return out;
}

}  // namespace ccperf::cloud
