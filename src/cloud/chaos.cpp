#include "cloud/chaos.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/threading.h"

namespace ccperf::cloud {

namespace {

// Offset deriving the independent-fault stream's seed from the scenario
// seed (the golden-ratio increment), so the correlated and independent
// processes never consume the same draws.
constexpr std::uint64_t kIndependentSeedOffset = 0x9E3779B97F4A7C15ULL;

}  // namespace

void ValidateMitigationPolicy(const MitigationPolicy& policy) {
  CCPERF_CHECK(!policy.name.empty(), "mitigation policy needs a name");
  ValidateRetryPolicy(policy.retry);
  ValidateRedundancyPolicy(policy.redundancy);
  if (policy.checkpointed) ValidateCheckpointPolicy(policy.checkpoint);
}

ChaosSweep::ChaosSweep(const ServingSimulator& serving,
                       FaultDomainTopology topology, ResourceConfig fleet,
                       double cross_pool_premium_frac)
    : serving_(serving),
      topology_(std::move(topology)),
      fleet_(std::move(fleet)),
      cross_pool_premium_frac_(cross_pool_premium_frac) {
  CCPERF_CHECK(!fleet_.Empty(), "chaos sweep needs a non-empty fleet");
  CCPERF_CHECK(cross_pool_premium_frac_ >= 0.0,
               "cross_pool_premium_frac must be >= 0, got ",
               cross_pool_premium_frac_);
  topology_.Validate();
  CCPERF_CHECK(!topology_.PoolIndices().empty(),
               "chaos sweep topology needs at least one pool");
}

ChaosOutcome ChaosSweep::RunOne(const MitigationPolicy& policy,
                                const IncidentScenario& scenario,
                                const ChaosConfig& config) const {
  ValidateMitigationPolicy(policy);
  ValidateServingPolicy(config.serving);
  CCPERF_CHECK(!scenario.name.empty(), "incident scenario needs a name");
  CCPERF_CHECK(config.duration_s > 0.0, "duration must be positive");
  if (policy.degrade) {
    CCPERF_CHECK(config.degraded_accuracy > 0.0 &&
                     config.degraded_accuracy <= 1.0,
                 "degraded_accuracy must be in (0, 1], got ",
                 config.degraded_accuracy);
  }

  const int instances = fleet_.TotalInstances();
  FaultDomainTopology placed = topology_;
  placed.PlaceInstances(instances, policy.spread);

  // Correlated and independent streams draw from disjoint seeded RNGs, so
  // the same scenario replays bit-for-bit regardless of which policies are
  // in the sweep.
  Rng correlated_rng(scenario.seed);
  const CorrelatedSchedule correlated = GenerateCorrelatedSchedule(
      scenario.correlated, placed, config.duration_s, correlated_rng);
  Rng independent_rng(scenario.seed + kIndependentSeedOffset);
  const FaultSchedule independent = GenerateFaultSchedule(
      scenario.independent, instances, config.duration_s, independent_rng);
  const FaultSchedule merged = MergeFaultSchedules(
      independent, LowerCorrelatedSchedule(correlated, placed));

  const VariantPerf& perf = policy.degrade ? config.degraded_perf
                                           : config.perf;
  const double accuracy = policy.degrade ? config.degraded_accuracy : 1.0;

  ChaosOutcome outcome;
  if (policy.checkpointed) {
    outcome.report = serving_.SimulateFaultedCheckpointed(
        fleet_, perf, config.arrivals, config.duration_s, config.serving,
        policy.retry, merged, policy.checkpoint, &outcome.checkpoint,
        policy.inflight, accuracy, policy.redundancy);
  } else {
    outcome.report = serving_.SimulateFaulted(
        fleet_, perf, config.arrivals, config.duration_s, config.serving,
        policy.retry, merged, policy.inflight, accuracy, policy.redundancy);
  }

  outcome.availability =
      outcome.report.requests > 0
          ? static_cast<double>(outcome.report.completed) /
                static_cast<double>(outcome.report.requests)
          : 1.0;

  outcome.cost_usd =
      outcome.report.cost_per_hour_usd * config.duration_s / 3600.0 +
      outcome.checkpoint.overhead_cost_usd;
  if (cross_pool_premium_frac_ > 0.0) {
    // Instances outside the primary pool (the placement's first pool) bill
    // the premium at their own type's hourly price.
    const int primary = placed.instance_domain[0];
    int index = 0;
    for (const auto& [type, count] : fleet_.instances) {
      const double price =
          serving_.Simulator().Catalog().Find(type).price_per_hour.value();
      for (int k = 0; k < count; ++k, ++index) {
        if (placed.instance_domain[static_cast<std::size_t>(index)] !=
            primary) {
          outcome.cost_usd += price * cross_pool_premium_frac_ *
                              config.duration_s / 3600.0;
        }
      }
    }
  }

  const std::int64_t good =
      outcome.report.completed - outcome.report.deadline_misses;
  outcome.cost_per_kilo_good =
      good > 0 ? outcome.cost_usd / static_cast<double>(good) * 1000.0
               : std::numeric_limits<double>::infinity();
  return outcome;
}

ChaosRanking ChaosSweep::Rank(const std::vector<MitigationPolicy>& policies,
                              const std::vector<IncidentScenario>& scenarios,
                              const ChaosConfig& config) const {
  CCPERF_CHECK(!policies.empty(), "need at least one mitigation policy");
  CCPERF_CHECK(!scenarios.empty(), "need at least one incident scenario");

  ChaosRanking ranking;
  ranking.outcomes.assign(policies.size(),
                          std::vector<ChaosOutcome>(scenarios.size()));
  FirstErrorCollector errors;
  // One cell per task; cell (p, s) owns outcomes[p][s], so only the error
  // funnel needs a lock and the grid is bitwise equal to a serial loop.
  ParallelFor(
      0, policies.size() * scenarios.size(),
      [&](std::size_t flat) {
        const std::size_t p = flat / scenarios.size();
        const std::size_t s = flat % scenarios.size();
        try {
          ranking.outcomes[p][s] = RunOne(policies[p], scenarios[s], config);
        } catch (const CheckError& error) {
          errors.Record(flat, detail::ConcatMessage(
                                  "policy '", policies[p].name,
                                  "' x scenario '", scenarios[s].name,
                                  "': ", error.what()));
        }
      },
      /*grain=*/1);
  errors.RethrowIfError();

  ranking.mean_availability.resize(policies.size());
  ranking.mean_cost_usd.resize(policies.size());
  ranking.mean_cost_per_kilo_good.resize(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    double availability = 0.0;
    double cost = 0.0;
    double per_good = 0.0;
    for (const ChaosOutcome& cell : ranking.outcomes[p]) {
      availability += cell.availability;
      cost += cell.cost_usd;
      per_good += cell.cost_per_kilo_good;
    }
    const double n = static_cast<double>(scenarios.size());
    ranking.mean_availability[p] = availability / n;
    ranking.mean_cost_usd[p] = cost / n;
    ranking.mean_cost_per_kilo_good[p] = per_good / n;
  }

  ranking.order.resize(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    ranking.order[p] = static_cast<int>(p);
  }
  std::stable_sort(ranking.order.begin(), ranking.order.end(),
                   [&](int a, int b) {
                     const auto ai = static_cast<std::size_t>(a);
                     const auto bi = static_cast<std::size_t>(b);
                     if (ranking.mean_availability[ai] !=
                         ranking.mean_availability[bi]) {
                       return ranking.mean_availability[ai] >
                              ranking.mean_availability[bi];
                     }
                     if (ranking.mean_cost_usd[ai] !=
                         ranking.mean_cost_usd[bi]) {
                       return ranking.mean_cost_usd[ai] <
                              ranking.mean_cost_usd[bi];
                     }
                     return a < b;
                   });
  return ranking;
}

MirroredRestoreDrill RunMirroredRestoreDrill(
    const ServingSimulator& serving, const ResourceConfig& config,
    const VariantPerf& perf, const std::vector<double>& arrivals,
    double duration_s, const ServingPolicy& policy, const RetryPolicy& retry,
    const RedundancyPolicy& redundancy, const FaultSchedule& faults,
    const CheckpointPolicy& checkpoint,
    const std::vector<int>& mirror_domains,
    const std::vector<int>& unreachable_at_kill, double kill_at_s,
    SnapshotVault& vault, const std::string& run_name) {
  ValidateCheckpointPolicy(checkpoint);
  CCPERF_CHECK(!mirror_domains.empty(),
               "mirrored restore drill needs at least one mirror domain");
  CCPERF_CHECK(kill_at_s > 0.0, "kill_at_s must be positive");

  const std::vector<double> instants = CheckpointInstants(
      checkpoint, faults, duration_s, config.TotalInstances());

  MirroredRestoreDrill drill;
  {
    FaultedServingEngine primary(serving, config, perf, arrivals, duration_s,
                                 policy, retry, faults,
                                 InflightPolicy::kRequeue,
                                 /*variant_accuracy=*/1.0, redundancy);
    std::size_t next = 0;
    bool killed = false;
    while (!primary.Done() && !killed) {
      primary.Step();
      while (next < instants.size() &&
             primary.Watermark() >= instants[next]) {
        vault.PutMirrored(run_name, primary.Watermark(),
                          primary.Checkpoint(), mirror_domains);
        ++drill.snapshots;
        ++next;
        if (primary.Watermark() >= kill_at_s) {
          // The preemption lands here: the primary engine is abandoned
          // mid-run with only its mirrored snapshots surviving.
          killed = true;
          break;
        }
      }
    }
  }
  CCPERF_CHECK(drill.snapshots > 0, "drill '", run_name,
               "': no snapshot published before the kill at ", kill_at_s,
               " s");

  // Failover: the newest mirror still reachable with `unreachable_at_kill`
  // partitioned away. GetReachable throws when the partition swallowed
  // every copy — that is real data loss and must surface.
  drill.restored_watermark =
      vault.ReachableWatermark(run_name, unreachable_at_kill);
  const std::string snapshot =
      vault.GetReachable(run_name, unreachable_at_kill);

  FaultedServingEngine replacement(serving, config, perf, arrivals,
                                   duration_s, policy, retry, faults,
                                   InflightPolicy::kRequeue,
                                   /*variant_accuracy=*/1.0, redundancy);
  replacement.Restore(snapshot);
  while (!replacement.Done()) replacement.Step();
  drill.report = replacement.Finish();
  return drill;
}

}  // namespace ccperf::cloud
