// Local response normalization across channels (AlexNet/GoogLeNet style).
#pragma once

#include <memory>

#include "nn/layer.h"

namespace ccperf::nn {

/// LRN parameters; defaults match Caffe's CaffeNet deploy prototxt.
struct LrnParams {
  std::int64_t local_size = 5;
  float alpha = 1e-4f;
  float beta = 0.75f;
  float k = 1.0f;
};

/// y[c] = x[c] / (k + alpha/n * sum_{c' in window} x[c']^2)^beta.
class LrnLayer final : public Layer {
 public:
  LrnLayer(std::string name, LrnParams params = {});

  [[nodiscard]] const LrnParams& Params() const { return params_; }

  [[nodiscard]] Shape OutputShape(const std::vector<Shape>& inputs) const override;
  [[nodiscard]] Tensor Forward(const std::vector<const Tensor*>& inputs) const override;
  [[nodiscard]] LayerCost Cost(const std::vector<Shape>& inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> Clone() const override;

 private:
  LrnParams params_;
};

}  // namespace ccperf::nn
