#include <memory>

#include "nn/activation_layers.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/model_zoo.h"
#include "nn/pool_layer.h"
#include "nn/weights.h"

namespace ccperf::nn {

Network BuildTinyCnn(const ModelConfig& config) {
  const std::int64_t classes =
      config.num_classes == 1000 ? 10 : config.num_classes;
  Network net("tinycnn", Shape{3, 16, 16});

  net.Add(std::make_unique<ConvLayer>(
      "conv1", ConvParams{.out_channels = 8, .kernel = 3, .stride = 1, .pad = 1},
      3));
  net.Add(std::make_unique<ReluLayer>("relu1"));
  net.Add(std::make_unique<PoolLayer>("pool1", LayerKind::kMaxPool,
                                      PoolParams{.kernel = 2, .stride = 2}));
  net.Add(std::make_unique<ConvLayer>(
      "conv2",
      ConvParams{.out_channels = 16, .kernel = 3, .stride = 1, .pad = 1,
                 .groups = 2},
      8));
  net.Add(std::make_unique<ReluLayer>("relu2"));
  net.Add(std::make_unique<PoolLayer>("pool2", LayerKind::kMaxPool,
                                      PoolParams{.kernel = 2, .stride = 2}));
  net.Add(std::make_unique<FcLayer>("fc1", 16 * 4 * 4, 32));
  net.Add(std::make_unique<ReluLayer>("relu3"));
  net.Add(std::make_unique<FcLayer>("fc2", 32, classes));
  net.Add(std::make_unique<SoftmaxLayer>("prob"));

  if (config.weight_seed != 0) {
    InitializePretrainedWeights(net, config.weight_seed);
  }
  return net;
}

}  // namespace ccperf::nn
