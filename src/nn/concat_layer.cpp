#include "nn/concat_layer.h"

#include <cstring>

#include "common/check.h"

namespace ccperf::nn {

ConcatLayer::ConcatLayer(std::string name)
    : Layer(std::move(name), LayerKind::kConcat) {}

Shape ConcatLayer::OutputShape(const std::vector<Shape>& inputs) const {
  CCPERF_CHECK(inputs.size() >= 2, "concat needs >= 2 inputs");
  const Shape& first = inputs[0];
  CCPERF_CHECK(first.Rank() == 4, "concat inputs must be NCHW");
  std::int64_t channels = 0;
  for (const Shape& s : inputs) {
    CCPERF_CHECK(s.Rank() == 4 && s.Dim(0) == first.Dim(0) &&
                     s.Dim(2) == first.Dim(2) && s.Dim(3) == first.Dim(3),
                 "concat input shape mismatch: ", s.ToString(), " vs ",
                 first.ToString());
    channels += s.Dim(1);
  }
  return Shape{first.Dim(0), channels, first.Dim(2), first.Dim(3)};
}

Tensor ConcatLayer::Forward(const std::vector<const Tensor*>& inputs) const {
  std::vector<Shape> shapes;
  shapes.reserve(inputs.size());
  for (const Tensor* t : inputs) {
    CCPERF_CHECK(t != nullptr, "null concat input");
    shapes.push_back(t->GetShape());
  }
  const Shape out_shape = OutputShape(shapes);
  Tensor out(out_shape);

  const std::int64_t batch = out_shape.Dim(0);
  const std::int64_t plane = out_shape.Dim(2) * out_shape.Dim(3);
  const std::int64_t out_chan = out_shape.Dim(1);
  float* dst = out.Data().data();

  for (std::int64_t b = 0; b < batch; ++b) {
    std::int64_t chan_off = 0;
    for (const Tensor* t : inputs) {
      const std::int64_t c = t->GetShape().Dim(1);
      const float* src = t->Data().data() + b * c * plane;
      std::memcpy(dst + (b * out_chan + chan_off) * plane, src,
                  static_cast<std::size_t>(c * plane) * sizeof(float));
      chan_off += c;
    }
  }
  return out;
}

std::unique_ptr<Layer> ConcatLayer::Clone() const {
  return std::make_unique<ConcatLayer>(Name());
}

}  // namespace ccperf::nn
