#include "nn/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <vector>

#include "common/check.h"
#include "nn/activation_layers.h"
#include "nn/concat_layer.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/lrn_layer.h"
#include "nn/pool_layer.h"

namespace ccperf::nn {

namespace {

constexpr char kMagic[4] = {'C', 'C', 'P', 'F'};
constexpr std::uint32_t kVersion = 1;

// --- primitive writers/readers ----------------------------------------------

void WriteBytes(std::ostream& out, const void* data, std::size_t size) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  CCPERF_CHECK(out.good(), "write failed during network serialization");
}

void ReadBytes(std::istream& in, void* data, std::size_t size) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  CCPERF_CHECK(in.good(), "truncated or unreadable network stream");
}

template <typename T>
void WritePod(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  WriteBytes(out, &value, sizeof(T));
}

template <typename T>
T ReadPod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  ReadBytes(in, &value, sizeof(T));
  return value;
}

void WriteString(std::ostream& out, const std::string& s) {
  CCPERF_CHECK(s.size() < (1u << 16), "string too long to serialize");
  WritePod<std::uint16_t>(out, static_cast<std::uint16_t>(s.size()));
  WriteBytes(out, s.data(), s.size());
}

std::string ReadString(std::istream& in) {
  const auto size = ReadPod<std::uint16_t>(in);
  std::string s(size, '\0');
  if (size > 0) ReadBytes(in, s.data(), size);
  return s;
}

// Upper bound on any deserialized extent/element count: a corrupted stream
// must fail with CheckError, not with a multi-gigabyte allocation.
constexpr std::int64_t kMaxExtent = 1'000'000'000;

std::int64_t ReadBoundedInt(std::istream& in) {
  const auto v = ReadPod<std::int64_t>(in);
  CCPERF_CHECK(v >= 0 && v <= kMaxExtent,
               "corrupt network stream: implausible extent ", v);
  return v;
}

void WriteShape(std::ostream& out, const Shape& shape) {
  WritePod<std::uint8_t>(out, static_cast<std::uint8_t>(shape.Rank()));
  for (auto d : shape.Dims()) WritePod<std::int64_t>(out, d);
}

Shape ReadShape(std::istream& in) {
  const auto rank = ReadPod<std::uint8_t>(in);
  CCPERF_CHECK(rank <= 8, "corrupt network stream: implausible rank");
  std::vector<std::int64_t> dims(rank);
  for (auto& d : dims) d = ReadBoundedInt(in);
  Shape shape(std::move(dims));
  CCPERF_CHECK(shape.NumElements() <= kMaxExtent,
               "corrupt network stream: implausible tensor size");
  return shape;
}

void WriteTensor(std::ostream& out, const Tensor& t) {
  WriteShape(out, t.GetShape());
  WriteBytes(out, t.Data().data(), t.Data().size() * sizeof(float));
}

Tensor ReadTensor(std::istream& in) {
  Shape shape = ReadShape(in);
  std::vector<float> data(static_cast<std::size_t>(shape.NumElements()));
  if (!data.empty()) ReadBytes(in, data.data(), data.size() * sizeof(float));
  return Tensor(std::move(shape), std::move(data));
}

// --- per-layer records -------------------------------------------------------

void WriteLayer(std::ostream& out, const Layer& layer) {
  WritePod<std::uint8_t>(out, static_cast<std::uint8_t>(layer.Kind()));
  WriteString(out, layer.Name());
  switch (layer.Kind()) {
    case LayerKind::kConvolution: {
      const auto& conv = static_cast<const ConvLayer&>(layer);
      WritePod<std::int64_t>(out, conv.InChannels());
      WritePod<std::int64_t>(out, conv.Params().out_channels);
      WritePod<std::int64_t>(out, conv.Params().kernel);
      WritePod<std::int64_t>(out, conv.Params().stride);
      WritePod<std::int64_t>(out, conv.Params().pad);
      WritePod<std::int64_t>(out, conv.Params().groups);
      break;
    }
    case LayerKind::kFullyConnected: {
      const auto& fc = static_cast<const FcLayer&>(layer);
      WritePod<std::int64_t>(out, fc.InFeatures());
      WritePod<std::int64_t>(out, fc.OutFeatures());
      break;
    }
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool: {
      const auto& pool = static_cast<const PoolLayer&>(layer);
      WritePod<std::int64_t>(out, pool.Params().kernel);
      WritePod<std::int64_t>(out, pool.Params().stride);
      WritePod<std::int64_t>(out, pool.Params().pad);
      break;
    }
    case LayerKind::kLRN: {
      const auto& lrn = static_cast<const LrnLayer&>(layer);
      WritePod<std::int64_t>(out, lrn.Params().local_size);
      WritePod<float>(out, lrn.Params().alpha);
      WritePod<float>(out, lrn.Params().beta);
      WritePod<float>(out, lrn.Params().k);
      break;
    }
    case LayerKind::kReLU:
    case LayerKind::kSoftmax:
    case LayerKind::kConcat:
    case LayerKind::kDropout:
      break;  // no hyper-parameters
    case LayerKind::kInput:
      CCPERF_CHECK(false, "input pseudo-layer cannot be serialized");
  }
  const bool has_weights = layer.HasWeights();
  WritePod<std::uint8_t>(out, has_weights ? 1 : 0);
  if (has_weights) {
    WriteTensor(out, layer.Weights());
    WriteTensor(out, layer.Bias());
  }
}

std::unique_ptr<Layer> ReadLayer(std::istream& in) {
  const auto kind = static_cast<LayerKind>(ReadPod<std::uint8_t>(in));
  std::string name = ReadString(in);
  std::unique_ptr<Layer> layer;
  switch (kind) {
    case LayerKind::kConvolution: {
      const auto in_channels = ReadBoundedInt(in);
      ConvParams params;
      params.out_channels = ReadBoundedInt(in);
      params.kernel = ReadBoundedInt(in);
      params.stride = ReadBoundedInt(in);
      params.pad = ReadBoundedInt(in);
      params.groups = ReadBoundedInt(in);
      const double conv_elems = static_cast<double>(params.out_channels) *
                                static_cast<double>(std::max<std::int64_t>(
                                    1, in_channels / std::max<std::int64_t>(
                                           1, params.groups))) *
                                static_cast<double>(params.kernel) *
                                static_cast<double>(params.kernel);
      CCPERF_CHECK(conv_elems <= 1e9,
                   "corrupt network stream: implausible conv size");
      layer = std::make_unique<ConvLayer>(std::move(name), params, in_channels);
      break;
    }
    case LayerKind::kFullyConnected: {
      const auto in_features = ReadBoundedInt(in);
      const auto out_features = ReadBoundedInt(in);
      CCPERF_CHECK(static_cast<double>(in_features) *
                           static_cast<double>(out_features) <=
                       1e9,
                   "corrupt network stream: implausible fc size");
      layer = std::make_unique<FcLayer>(std::move(name), in_features,
                                        out_features);
      break;
    }
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool: {
      PoolParams params;
      params.kernel = ReadBoundedInt(in);
      params.stride = ReadBoundedInt(in);
      params.pad = ReadBoundedInt(in);
      layer = std::make_unique<PoolLayer>(std::move(name), kind, params);
      break;
    }
    case LayerKind::kLRN: {
      LrnParams params;
      params.local_size = ReadBoundedInt(in);
      params.alpha = ReadPod<float>(in);
      params.beta = ReadPod<float>(in);
      params.k = ReadPod<float>(in);
      layer = std::make_unique<LrnLayer>(std::move(name), params);
      break;
    }
    case LayerKind::kReLU:
      layer = std::make_unique<ReluLayer>(std::move(name));
      break;
    case LayerKind::kSoftmax:
      layer = std::make_unique<SoftmaxLayer>(std::move(name));
      break;
    case LayerKind::kConcat:
      layer = std::make_unique<ConcatLayer>(std::move(name));
      break;
    case LayerKind::kDropout:
      layer = std::make_unique<DropoutLayer>(std::move(name));
      break;
    case LayerKind::kInput:
    default:
      CCPERF_CHECK(false, "corrupt network stream: bad layer kind tag ",
                   static_cast<int>(kind));
  }
  const bool has_weights = ReadPod<std::uint8_t>(in) != 0;
  CCPERF_CHECK(has_weights == layer->HasWeights(),
               "corrupt network stream: weight flag mismatch for '",
               layer->Name(), "'");
  if (has_weights) {
    Tensor weights = ReadTensor(in);
    Tensor bias = ReadTensor(in);
    CCPERF_CHECK(weights.GetShape() == layer->Weights().GetShape(),
                 "weight shape mismatch for '", layer->Name(), "'");
    layer->MutableWeights() = std::move(weights);
    layer->MutableBias() = std::move(bias);
    layer->NotifyWeightsChanged();
  }
  return layer;
}

}  // namespace

void SaveNetwork(const Network& net, std::ostream& out) {
  WriteBytes(out, kMagic, sizeof(kMagic));
  WritePod<std::uint32_t>(out, kVersion);
  WriteString(out, net.Name());
  WriteShape(out, net.InputShape());
  WritePod<std::uint32_t>(out, static_cast<std::uint32_t>(net.LayerCount()));
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    WriteLayer(out, net.LayerAt(i));
    const auto& inputs = net.NodeInputs(i);
    WritePod<std::uint8_t>(out, static_cast<std::uint8_t>(inputs.size()));
    for (auto idx : inputs) WritePod<std::int64_t>(out, idx);
  }
}

Network LoadNetwork(std::istream& in) {
  char magic[4];
  ReadBytes(in, magic, sizeof(magic));
  CCPERF_CHECK(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
               "not a ccperf network stream (bad magic)");
  const auto version = ReadPod<std::uint32_t>(in);
  CCPERF_CHECK(version == kVersion, "unsupported network format version ",
               version);
  std::string name = ReadString(in);
  Shape input_shape = ReadShape(in);
  Network net(std::move(name), std::move(input_shape));
  const auto layer_count = ReadPod<std::uint32_t>(in);
  std::vector<std::string> layer_names;
  layer_names.reserve(layer_count);
  for (std::uint32_t i = 0; i < layer_count; ++i) {
    std::unique_ptr<Layer> layer = ReadLayer(in);
    layer_names.push_back(layer->Name());
    const auto input_count = ReadPod<std::uint8_t>(in);
    std::vector<std::string> inputs;
    inputs.reserve(input_count);
    for (std::uint8_t k = 0; k < input_count; ++k) {
      const auto idx = ReadPod<std::int64_t>(in);
      if (idx < 0) {
        inputs.emplace_back("input");
      } else {
        CCPERF_CHECK(idx < static_cast<std::int64_t>(i),
                     "corrupt network stream: forward edge");
        inputs.push_back(layer_names[static_cast<std::size_t>(idx)]);
      }
    }
    net.Add(std::move(layer), std::move(inputs));
  }
  return net;
}

void SaveNetworkToFile(const Network& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  CCPERF_CHECK(out.good(), "cannot open '", path, "' for writing");
  SaveNetwork(net, out);
  out.flush();
  CCPERF_CHECK(out.good(), "write failed for network file '", path, "'");
}

Network LoadNetworkFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CCPERF_CHECK(in.good(), "cannot open '", path, "' for reading");
  try {
    Network net = LoadNetwork(in);
    CCPERF_CHECK(!in.bad(), "read failed mid-stream");
    return net;
  } catch (const CheckError& error) {
    // Re-raise with the path: a caller batch-loading many models needs to
    // know which file is the corrupt one.
    CCPERF_CHECK(false, "network file '", path, "': ", error.what());
  }
}

}  // namespace ccperf::nn
