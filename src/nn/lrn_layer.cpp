#include "nn/lrn_layer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ccperf::nn {

LrnLayer::LrnLayer(std::string name, LrnParams params)
    : Layer(std::move(name), LayerKind::kLRN), params_(params) {
  CCPERF_CHECK(params_.local_size >= 1 && params_.local_size % 2 == 1,
               "LRN local_size must be odd");
}

Shape LrnLayer::OutputShape(const std::vector<Shape>& inputs) const {
  CCPERF_CHECK(inputs.size() == 1, "lrn takes one input");
  CCPERF_CHECK(inputs[0].Rank() == 4, "lrn input must be NCHW");
  return inputs[0];
}

Tensor LrnLayer::Forward(const std::vector<const Tensor*>& inputs) const {
  CCPERF_CHECK(inputs.size() == 1 && inputs[0] != nullptr, "lrn arity");
  const Tensor& in = *inputs[0];
  Tensor out(in.GetShape());
  const std::int64_t batch = in.GetShape().Dim(0);
  const std::int64_t channels = in.GetShape().Dim(1);
  const std::int64_t plane = in.GetShape().Dim(2) * in.GetShape().Dim(3);
  const std::int64_t half = params_.local_size / 2;
  const float alpha_over_n =
      params_.alpha / static_cast<float>(params_.local_size);

  const float* src = in.Data().data();
  float* dst = out.Data().data();
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* img = src + b * channels * plane;
    float* oimg = dst + b * channels * plane;
    for (std::int64_t p = 0; p < plane; ++p) {
      for (std::int64_t c = 0; c < channels; ++c) {
        const std::int64_t c0 = std::max<std::int64_t>(0, c - half);
        const std::int64_t c1 = std::min(channels, c + half + 1);
        float ss = 0.0f;
        for (std::int64_t cc = c0; cc < c1; ++cc) {
          const float v = img[cc * plane + p];
          ss += v * v;
        }
        const float scale =
            std::pow(params_.k + alpha_over_n * ss, -params_.beta);
        oimg[c * plane + p] = img[c * plane + p] * scale;
      }
    }
  }
  return out;
}

LayerCost LrnLayer::Cost(const std::vector<Shape>& inputs) const {
  LayerCost cost = Layer::Cost(inputs);
  // ~local_size MACs + one pow per element.
  cost.flops = static_cast<double>(inputs[0].NumElements()) *
               (2.0 * static_cast<double>(params_.local_size) + 8.0);
  return cost;
}

std::unique_ptr<Layer> LrnLayer::Clone() const {
  return std::make_unique<LrnLayer>(Name(), params_);
}

}  // namespace ccperf::nn
