#include <cmath>
#include <memory>

#include "common/check.h"
#include "nn/activation_layers.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/lrn_layer.h"
#include "nn/model_zoo.h"
#include "nn/pool_layer.h"
#include "nn/weights.h"

namespace ccperf::nn {

namespace {
std::int64_t Scaled(std::int64_t channels, double scale,
                    std::int64_t multiple) {
  const auto raw = static_cast<std::int64_t>(
      std::llround(static_cast<double>(channels) * scale /
                   static_cast<double>(multiple)));
  return std::max<std::int64_t>(1, raw) * multiple;
}
}  // namespace

Network BuildCaffeNet(const ModelConfig& config) {
  CCPERF_CHECK(config.channel_scale > 0.0 && config.channel_scale <= 4.0,
               "channel_scale out of range");
  const double s = config.channel_scale;
  Network net("caffenet", Shape{3, 227, 227});

  const std::int64_t c1 = Scaled(96, s, 2);
  const std::int64_t c2 = Scaled(256, s, 2);
  const std::int64_t c3 = Scaled(384, s, 2);
  const std::int64_t c4 = Scaled(384, s, 2);
  const std::int64_t c5 = Scaled(256, s, 2);
  const std::int64_t f1 = Scaled(4096, s, 1);
  const std::int64_t f2 = Scaled(4096, s, 1);

  net.Add(std::make_unique<ConvLayer>(
      "conv1", ConvParams{.out_channels = c1, .kernel = 11, .stride = 4}, 3));
  net.Add(std::make_unique<ReluLayer>("relu1"));
  net.Add(std::make_unique<LrnLayer>("norm1"));
  net.Add(std::make_unique<PoolLayer>("pool1", LayerKind::kMaxPool,
                                      PoolParams{.kernel = 3, .stride = 2}));

  net.Add(std::make_unique<ConvLayer>(
      "conv2",
      ConvParams{.out_channels = c2, .kernel = 5, .stride = 1, .pad = 2,
                 .groups = 2},
      c1));
  net.Add(std::make_unique<ReluLayer>("relu2"));
  net.Add(std::make_unique<LrnLayer>("norm2"));
  net.Add(std::make_unique<PoolLayer>("pool2", LayerKind::kMaxPool,
                                      PoolParams{.kernel = 3, .stride = 2}));

  net.Add(std::make_unique<ConvLayer>(
      "conv3",
      ConvParams{.out_channels = c3, .kernel = 3, .stride = 1, .pad = 1}, c2));
  net.Add(std::make_unique<ReluLayer>("relu3"));

  net.Add(std::make_unique<ConvLayer>(
      "conv4",
      ConvParams{.out_channels = c4, .kernel = 3, .stride = 1, .pad = 1,
                 .groups = 2},
      c3));
  net.Add(std::make_unique<ReluLayer>("relu4"));

  net.Add(std::make_unique<ConvLayer>(
      "conv5",
      ConvParams{.out_channels = c5, .kernel = 3, .stride = 1, .pad = 1,
                 .groups = 2},
      c4));
  net.Add(std::make_unique<ReluLayer>("relu5"));
  net.Add(std::make_unique<PoolLayer>("pool5", LayerKind::kMaxPool,
                                      PoolParams{.kernel = 3, .stride = 2}));

  net.Add(std::make_unique<FcLayer>("fc1", c5 * 6 * 6, f1));
  net.Add(std::make_unique<ReluLayer>("relu6"));
  net.Add(std::make_unique<DropoutLayer>("drop6"));
  net.Add(std::make_unique<FcLayer>("fc2", f1, f2));
  net.Add(std::make_unique<ReluLayer>("relu7"));
  net.Add(std::make_unique<DropoutLayer>("drop7"));
  net.Add(std::make_unique<FcLayer>("fc3", f2, config.num_classes));
  net.Add(std::make_unique<SoftmaxLayer>("prob"));

  if (config.weight_seed != 0) {
    InitializePretrainedWeights(net, config.weight_seed);
  }
  return net;
}

}  // namespace ccperf::nn
