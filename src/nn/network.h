// Network: a topologically-ordered DAG of layers with per-layer timing.
//
// Layers are added in topological order (each input must already exist), so
// GoogLeNet's inception branches are expressed naturally. Forward() releases
// intermediate activations after their last consumer to bound memory.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace ccperf::nn {

/// Wall-clock time attributed to one layer during a Forward() call.
struct LayerTiming {
  std::string name;
  LayerKind kind = LayerKind::kInput;
  double seconds = 0.0;
};

/// One weighted layer's reference checksums: CRC32 (common/snapshot) over
/// the raw float bytes of its weight tensor and bias vector.
struct LayerCrc {
  std::string name;
  std::uint32_t weights_crc = 0;
  std::uint32_t bias_crc = 0;
};

/// Outcome of an integrity scrub (Network::VerifyIntegrity).
struct IntegrityReport {
  /// True iff every weighted layer's CRCs match the captured baseline.
  bool ok = true;
  /// Weighted layers compared (2 CRCs each).
  std::size_t layers_checked = 0;
  /// Names of layers whose weights or bias diverged, topological order.
  std::vector<std::string> corrupted_layers;
};

/// Inference DAG. The virtual node "input" feeds layers with no explicit
/// predecessor list.
class Network {
 public:
  /// `input_shape` is CHW (batch is supplied per Forward call).
  Network(std::string name, Shape input_shape);

  Network(Network&&) noexcept = default;
  Network& operator=(Network&&) noexcept = default;

  [[nodiscard]] const std::string& Name() const { return name_; }
  [[nodiscard]] const Shape& InputShape() const { return input_shape_; }

  /// Add a layer consuming the named predecessors ("input" = network input).
  /// An empty list wires it to the most recently added layer (or the input).
  /// Returns a stable reference to the stored layer.
  Layer& Add(std::unique_ptr<Layer> layer,
             std::vector<std::string> inputs = {});

  [[nodiscard]] std::size_t LayerCount() const { return nodes_.size(); }
  [[nodiscard]] Layer& LayerAt(std::size_t i);
  [[nodiscard]] const Layer& LayerAt(std::size_t i) const;

  /// Indices into LayerAt() of the i-th node's inputs; -1 = network input.
  [[nodiscard]] const std::vector<std::int64_t>& NodeInputs(std::size_t i) const;

  /// Find a layer by name (nullptr if absent).
  [[nodiscard]] Layer* FindLayer(const std::string& name);
  [[nodiscard]] const Layer* FindLayer(const std::string& name) const;

  /// Output shape of the final layer for a given batch size.
  [[nodiscard]] Shape OutputShape(std::int64_t batch) const;

  /// Run inference on a [B, C, H, W] batch; returns the last layer's output.
  /// If `timings` is non-null it is filled with one entry per layer.
  [[nodiscard]] Tensor Forward(const Tensor& input,
                               std::vector<LayerTiming>* timings = nullptr) const;

  /// Total number of parameters (weights + biases) across weighted layers.
  [[nodiscard]] std::int64_t ParameterCount() const;

  /// Deep copy including weights and cached sparse state.
  [[nodiscard]] Network Clone() const;

  /// Opt every weighted layer into (or out of) int8 quantized execution.
  /// Layers re-dispatch immediately; Clone() preserves the setting.
  void SetInt8Execution(bool enabled);

  /// True if any layer currently opts into int8 execution.
  [[nodiscard]] bool Int8Execution() const;

  /// Names of all weighted (prunable) layers, in topological order.
  [[nodiscard]] std::vector<std::string> WeightedLayerNames() const;

  /// Capture per-layer weight/bias CRC32s as the integrity baseline for
  /// VerifyIntegrity. Returns the number of weighted layers registered.
  /// Re-capture after any legitimate weight mutation (pruning, weight
  /// loading) — the scrub cannot distinguish intent from corruption.
  std::size_t CaptureWeightCrcs();

  /// The captured baseline (empty until CaptureWeightCrcs runs).
  [[nodiscard]] const std::vector<LayerCrc>& WeightCrcs() const {
    return weight_crcs_;
  }

  /// Integrity scrub: recompute every weighted layer's CRCs and compare to
  /// the captured baseline. Requires a prior CaptureWeightCrcs (checked);
  /// also fails if the set of weighted layers itself changed.
  [[nodiscard]] IntegrityReport VerifyIntegrity() const;

 private:
  struct Node {
    std::unique_ptr<Layer> layer;
    std::vector<std::int64_t> inputs;  // -1 = network input
  };

  [[nodiscard]] std::int64_t IndexOf(const std::string& name) const;

  std::string name_;
  Shape input_shape_;  // CHW
  std::vector<Node> nodes_;
  std::vector<LayerCrc> weight_crcs_;  // integrity baseline; may be empty
  bool crcs_captured_ = false;
};

/// Index of the class with the highest score per batch element.
std::vector<std::int64_t> ArgMax(const Tensor& logits);

/// Indices of the top-k classes (descending score) per batch element.
std::vector<std::vector<std::int64_t>> TopK(const Tensor& logits, std::size_t k);

}  // namespace ccperf::nn
