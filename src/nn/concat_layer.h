// Channel-axis concatenation — joins the four inception branches.
#pragma once

#include <memory>

#include "nn/layer.h"

namespace ccperf::nn {

/// Concatenate >= 2 NCHW tensors along the channel axis. All inputs must
/// share batch and spatial extents.
class ConcatLayer final : public Layer {
 public:
  explicit ConcatLayer(std::string name);

  [[nodiscard]] Shape OutputShape(const std::vector<Shape>& inputs) const override;
  [[nodiscard]] Tensor Forward(const std::vector<const Tensor*>& inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> Clone() const override;
};

}  // namespace ccperf::nn
