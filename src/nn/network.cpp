#include "nn/network.h"

#include <algorithm>

#include "common/check.h"
#include "common/snapshot.h"
#include "common/timer.h"

namespace ccperf::nn {

Network::Network(std::string name, Shape input_shape)
    : name_(std::move(name)), input_shape_(std::move(input_shape)) {
  CCPERF_CHECK(input_shape_.Rank() == 3, "network input shape must be CHW, got ",
               input_shape_.ToString());
}

std::int64_t Network::IndexOf(const std::string& name) const {
  if (name == "input") return -1;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].layer->Name() == name) return static_cast<std::int64_t>(i);
  }
  CCPERF_CHECK(false, "unknown layer '", name, "' in network ", name_);
}

Layer& Network::Add(std::unique_ptr<Layer> layer,
                    std::vector<std::string> inputs) {
  CCPERF_CHECK(layer != nullptr, "null layer");
  CCPERF_CHECK(FindLayer(layer->Name()) == nullptr, "duplicate layer name '",
               layer->Name(), "'");
  Node node;
  if (inputs.empty()) {
    node.inputs.push_back(nodes_.empty()
                              ? -1
                              : static_cast<std::int64_t>(nodes_.size()) - 1);
  } else {
    node.inputs.reserve(inputs.size());
    for (const auto& in : inputs) node.inputs.push_back(IndexOf(in));
  }
  node.layer = std::move(layer);
  nodes_.push_back(std::move(node));
  return *nodes_.back().layer;
}

Layer& Network::LayerAt(std::size_t i) {
  CCPERF_CHECK(i < nodes_.size(), "layer index out of range");
  return *nodes_[i].layer;
}

const Layer& Network::LayerAt(std::size_t i) const {
  CCPERF_CHECK(i < nodes_.size(), "layer index out of range");
  return *nodes_[i].layer;
}

const std::vector<std::int64_t>& Network::NodeInputs(std::size_t i) const {
  CCPERF_CHECK(i < nodes_.size(), "node index out of range");
  return nodes_[i].inputs;
}

Layer* Network::FindLayer(const std::string& name) {
  for (auto& node : nodes_) {
    if (node.layer->Name() == name) return node.layer.get();
  }
  return nullptr;
}

const Layer* Network::FindLayer(const std::string& name) const {
  for (const auto& node : nodes_) {
    if (node.layer->Name() == name) return node.layer.get();
  }
  return nullptr;
}

Shape Network::OutputShape(std::int64_t batch) const {
  CCPERF_CHECK(!nodes_.empty(), "empty network");
  std::vector<Shape> shapes(nodes_.size());
  const Shape in_shape{batch, input_shape_.Dim(0), input_shape_.Dim(1),
                       input_shape_.Dim(2)};
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::vector<Shape> ins;
    ins.reserve(nodes_[i].inputs.size());
    for (auto idx : nodes_[i].inputs) {
      ins.push_back(idx < 0 ? in_shape : shapes[static_cast<std::size_t>(idx)]);
    }
    shapes[i] = nodes_[i].layer->OutputShape(ins);
  }
  return shapes.back();
}

Tensor Network::Forward(const Tensor& input,
                        std::vector<LayerTiming>* timings) const {
  CCPERF_CHECK(!nodes_.empty(), "empty network");
  const Shape& in = input.GetShape();
  CCPERF_CHECK(in.Rank() == 4 && in.Dim(1) == input_shape_.Dim(0) &&
                   in.Dim(2) == input_shape_.Dim(1) &&
                   in.Dim(3) == input_shape_.Dim(2),
               "input shape ", in.ToString(), " incompatible with network ",
               name_, " expecting CHW ", input_shape_.ToString());

  if (timings) {
    timings->clear();
    timings->reserve(nodes_.size());
  }

  // Remaining-consumer counts so intermediates can be released eagerly.
  std::vector<int> remaining(nodes_.size(), 0);
  for (const auto& node : nodes_) {
    for (auto idx : node.inputs) {
      if (idx >= 0) ++remaining[static_cast<std::size_t>(idx)];
    }
  }
  // The final node's output survives the loop.
  remaining.back() += 1;

  std::vector<std::optional<Tensor>> outputs(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::vector<const Tensor*> ins;
    ins.reserve(nodes_[i].inputs.size());
    for (auto idx : nodes_[i].inputs) {
      if (idx < 0) {
        ins.push_back(&input);
      } else {
        const auto& slot = outputs[static_cast<std::size_t>(idx)];
        CCPERF_CHECK(slot.has_value(), "activation released too early");
        ins.push_back(&*slot);
      }
    }
    Timer timer;
    outputs[i] = nodes_[i].layer->Forward(ins);
    if (timings) {
      timings->push_back({nodes_[i].layer->Name(), nodes_[i].layer->Kind(),
                          timer.ElapsedSeconds()});
    }
    for (auto idx : nodes_[i].inputs) {
      if (idx >= 0 && --remaining[static_cast<std::size_t>(idx)] == 0) {
        outputs[static_cast<std::size_t>(idx)].reset();
      }
    }
  }
  return std::move(*outputs.back());
}

std::int64_t Network::ParameterCount() const {
  std::int64_t count = 0;
  for (const auto& node : nodes_) {
    if (node.layer->HasWeights()) {
      count += node.layer->Weights().NumElements();
      // Bias: every weighted layer here carries one bias per output unit.
      count += node.layer->Weights().GetShape().Dim(0);
    }
  }
  return count;
}

Network Network::Clone() const {
  Network copy(name_, input_shape_);
  for (const auto& node : nodes_) {
    std::vector<std::string> inputs;
    inputs.reserve(node.inputs.size());
    for (auto idx : node.inputs) {
      inputs.push_back(idx < 0 ? "input"
                               : nodes_[static_cast<std::size_t>(idx)]
                                     .layer->Name());
    }
    copy.Add(node.layer->Clone(), std::move(inputs));
  }
  // The clone holds byte-identical weights, so the integrity baseline
  // transfers verbatim.
  copy.weight_crcs_ = weight_crcs_;
  copy.crcs_captured_ = crcs_captured_;
  return copy;
}

namespace {

LayerCrc ComputeLayerCrc(const Layer& layer) {
  LayerCrc crc;
  crc.name = layer.Name();
  const std::span<const float> w = layer.Weights().Data();
  const std::span<const float> b = layer.Bias().Data();
  crc.weights_crc = Crc32(w.data(), w.size_bytes());
  crc.bias_crc = Crc32(b.data(), b.size_bytes());
  return crc;
}

}  // namespace

std::size_t Network::CaptureWeightCrcs() {
  weight_crcs_.clear();
  for (const auto& node : nodes_) {
    if (node.layer->HasWeights()) {
      weight_crcs_.push_back(ComputeLayerCrc(*node.layer));
    }
  }
  crcs_captured_ = true;
  return weight_crcs_.size();
}

IntegrityReport Network::VerifyIntegrity() const {
  CCPERF_CHECK(crcs_captured_,
               "VerifyIntegrity before CaptureWeightCrcs on network ", name_);
  IntegrityReport report;
  std::size_t next = 0;
  for (const auto& node : nodes_) {
    if (!node.layer->HasWeights()) continue;
    if (next >= weight_crcs_.size()) {
      // A weighted layer appeared after capture: structural divergence.
      report.ok = false;
      report.corrupted_layers.push_back(node.layer->Name());
      continue;
    }
    const LayerCrc& baseline = weight_crcs_[next++];
    const LayerCrc current = ComputeLayerCrc(*node.layer);
    ++report.layers_checked;
    if (current.name != baseline.name ||
        current.weights_crc != baseline.weights_crc ||
        current.bias_crc != baseline.bias_crc) {
      report.ok = false;
      report.corrupted_layers.push_back(node.layer->Name());
    }
  }
  if (next != weight_crcs_.size()) report.ok = false;
  return report;
}

void Network::SetInt8Execution(bool enabled) {
  for (auto& node : nodes_) node.layer->SetInt8Execution(enabled);
}

bool Network::Int8Execution() const {
  for (const auto& node : nodes_) {
    if (node.layer->Int8Execution()) return true;
  }
  return false;
}

std::vector<std::string> Network::WeightedLayerNames() const {
  std::vector<std::string> names;
  for (const auto& node : nodes_) {
    if (node.layer->HasWeights()) names.push_back(node.layer->Name());
  }
  return names;
}

std::vector<std::int64_t> ArgMax(const Tensor& logits) {
  const Shape& s = logits.GetShape();
  CCPERF_CHECK(s.Rank() == 4 && s.Dim(2) == 1 && s.Dim(3) == 1,
               "ArgMax expects [N,C,1,1]");
  const std::int64_t batch = s.Dim(0);
  const std::int64_t classes = s.Dim(1);
  const float* data = logits.Data().data();
  std::vector<std::int64_t> result(static_cast<std::size_t>(batch));
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* row = data + b * classes;
    result[static_cast<std::size_t>(b)] =
        std::max_element(row, row + classes) - row;
  }
  return result;
}

std::vector<std::vector<std::int64_t>> TopK(const Tensor& logits,
                                            std::size_t k) {
  const Shape& s = logits.GetShape();
  CCPERF_CHECK(s.Rank() == 4 && s.Dim(2) == 1 && s.Dim(3) == 1,
               "TopK expects [N,C,1,1]");
  const std::int64_t batch = s.Dim(0);
  const std::int64_t classes = s.Dim(1);
  CCPERF_CHECK(k >= 1 && static_cast<std::int64_t>(k) <= classes,
               "k out of range");
  const float* data = logits.Data().data();
  std::vector<std::vector<std::int64_t>> result(
      static_cast<std::size_t>(batch));
  std::vector<std::int64_t> order(static_cast<std::size_t>(classes));
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* row = data + b * classes;
    for (std::int64_t c = 0; c < classes; ++c) {
      order[static_cast<std::size_t>(c)] = c;
    }
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::int64_t>(k), order.end(),
                      [row](std::int64_t x, std::int64_t y) {
                        return row[x] > row[y];
                      });
    result[static_cast<std::size_t>(b)].assign(order.begin(),
                                               order.begin() + static_cast<std::int64_t>(k));
  }
  return result;
}

}  // namespace ccperf::nn
