#include "nn/pool_layer.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace ccperf::nn {

namespace {
std::int64_t CeilDiv(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }
}  // namespace

PoolLayer::PoolLayer(std::string name, LayerKind kind, PoolParams params)
    : Layer(std::move(name), kind), params_(params) {
  CCPERF_CHECK(kind == LayerKind::kMaxPool || kind == LayerKind::kAvgPool,
               "PoolLayer kind must be max or avg pool");
  CCPERF_CHECK(params_.kernel > 0 && params_.stride > 0 && params_.pad >= 0,
               "invalid pool params for ", Name());
}

Shape PoolLayer::OutputShape(const std::vector<Shape>& inputs) const {
  CCPERF_CHECK(inputs.size() == 1, "pool takes one input");
  const Shape& in = inputs[0];
  CCPERF_CHECK(in.Rank() == 4, "pool input must be NCHW");
  const std::int64_t out_h =
      CeilDiv(in.Dim(2) + 2 * params_.pad - params_.kernel, params_.stride) + 1;
  const std::int64_t out_w =
      CeilDiv(in.Dim(3) + 2 * params_.pad - params_.kernel, params_.stride) + 1;
  CCPERF_CHECK(out_h > 0 && out_w > 0, "pool output collapses for ", Name());
  return Shape{in.Dim(0), in.Dim(1), out_h, out_w};
}

Tensor PoolLayer::Forward(const std::vector<const Tensor*>& inputs) const {
  CCPERF_CHECK(inputs.size() == 1 && inputs[0] != nullptr, "pool arity");
  const Tensor& in = *inputs[0];
  const Shape out_shape = OutputShape({in.GetShape()});
  Tensor out(out_shape);

  const std::int64_t batch = in.GetShape().Dim(0);
  const std::int64_t channels = in.GetShape().Dim(1);
  const std::int64_t in_h = in.GetShape().Dim(2);
  const std::int64_t in_w = in.GetShape().Dim(3);
  const std::int64_t out_h = out_shape.Dim(2);
  const std::int64_t out_w = out_shape.Dim(3);
  const bool is_max = Kind() == LayerKind::kMaxPool;

  const float* src = in.Data().data();
  float* dst = out.Data().data();
  for (std::int64_t nc = 0; nc < batch * channels; ++nc) {
    const float* plane = src + nc * in_h * in_w;
    float* oplane = dst + nc * out_h * out_w;
    for (std::int64_t oh = 0; oh < out_h; ++oh) {
      const std::int64_t h0 = std::max<std::int64_t>(0, oh * params_.stride - params_.pad);
      const std::int64_t h1 = std::min(in_h, oh * params_.stride - params_.pad + params_.kernel);
      for (std::int64_t ow = 0; ow < out_w; ++ow) {
        const std::int64_t w0 = std::max<std::int64_t>(0, ow * params_.stride - params_.pad);
        const std::int64_t w1 = std::min(in_w, ow * params_.stride - params_.pad + params_.kernel);
        if (is_max) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t h = h0; h < h1; ++h) {
            for (std::int64_t w = w0; w < w1; ++w) {
              best = std::max(best, plane[h * in_w + w]);
            }
          }
          oplane[oh * out_w + ow] = (h1 > h0 && w1 > w0) ? best : 0.0f;
        } else {
          float sum = 0.0f;
          const std::int64_t count = (h1 - h0) * (w1 - w0);
          for (std::int64_t h = h0; h < h1; ++h) {
            for (std::int64_t w = w0; w < w1; ++w) {
              sum += plane[h * in_w + w];
            }
          }
          oplane[oh * out_w + ow] =
              count > 0 ? sum / static_cast<float>(count) : 0.0f;
        }
      }
    }
  }
  return out;
}

std::unique_ptr<Layer> PoolLayer::Clone() const {
  return std::make_unique<PoolLayer>(Name(), Kind(), params_);
}

}  // namespace ccperf::nn
