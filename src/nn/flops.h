// Static cost analysis of a network: per-layer FLOPs, parameter bytes and
// activation traffic. This feeds the cloud GPU device model.
#pragma once

#include <string>
#include <vector>

#include "nn/network.h"

namespace ccperf::nn {

/// Cost of one layer for a specific batch size.
struct LayerCostInfo {
  std::string name;
  LayerKind kind = LayerKind::kInput;
  LayerCost cost;
  Shape output_shape;
  double weight_density = 1.0;
};

/// Whole-network static cost breakdown.
struct NetworkCostReport {
  std::vector<LayerCostInfo> layers;
  double total_flops = 0.0;
  double total_weight_bytes = 0.0;
  double total_activation_bytes = 0.0;

  /// Sum of flops over layers of the given kind.
  [[nodiscard]] double FlopsOfKind(LayerKind kind) const;
};

/// Analyze `net` executing one batch of `batch` images.
NetworkCostReport AnalyzeNetwork(const Network& net, std::int64_t batch);

}  // namespace ccperf::nn
