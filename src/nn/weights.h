// Deterministic synthetic "pretrained" weights.
//
// We cannot ship the paper's ImageNet-trained Caffe models, so weighted
// layers are filled with He-scaled Gaussians from a per-layer stream derived
// from (seed, layer name). The draw is independent of layer insertion order,
// so clones and rebuilt networks get byte-identical weights.
#pragma once

#include <cstdint>

#include "nn/network.h"

namespace ccperf::nn {

/// Fill all weighted layers of `net` with deterministic He-initialized
/// Gaussians and small positive biases, then refresh cached sparse state.
void InitializePretrainedWeights(Network& net, std::uint64_t seed);

/// 64-bit FNV-1a hash of a string (exposed for tests).
std::uint64_t HashName(const std::string& name);

}  // namespace ccperf::nn
