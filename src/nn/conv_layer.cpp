#include "nn/conv_layer.h"

#include "common/check.h"
#include "tensor/gemm.h"

namespace ccperf::nn {

ConvLayer::ConvLayer(std::string name, ConvParams params,
                     std::int64_t in_channels)
    : Layer(std::move(name), LayerKind::kConvolution),
      params_(params),
      in_channels_(in_channels),
      weights_(Shape{params.out_channels, in_channels / params.groups,
                     params.kernel, params.kernel}),
      bias_(Shape{params.out_channels}) {
  CCPERF_CHECK(params_.out_channels > 0 && params_.kernel > 0 &&
                   params_.stride > 0 && params_.pad >= 0 && params_.groups > 0,
               "invalid conv params for ", Name());
  CCPERF_CHECK(in_channels_ % params_.groups == 0,
               "in_channels ", in_channels_, " not divisible by groups ",
               params_.groups, " in ", Name());
  CCPERF_CHECK(params_.out_channels % params_.groups == 0,
               "out_channels not divisible by groups in ", Name());
}

ConvGeometry ConvLayer::GeometryFor(const Shape& input) const {
  CCPERF_CHECK(input.Rank() == 4, "conv input must be NCHW, got ",
               input.ToString());
  CCPERF_CHECK(input.Dim(1) == in_channels_, "conv ", Name(), " expects ",
               in_channels_, " channels, got ", input.Dim(1));
  ConvGeometry g;
  g.in_channels = in_channels_ / params_.groups;
  g.in_h = input.Dim(2);
  g.in_w = input.Dim(3);
  g.kernel_h = params_.kernel;
  g.kernel_w = params_.kernel;
  g.stride = params_.stride;
  g.pad = params_.pad;
  return g;
}

Shape ConvLayer::OutputShape(const std::vector<Shape>& inputs) const {
  CCPERF_CHECK(inputs.size() == 1, "conv takes one input");
  const ConvGeometry g = GeometryFor(inputs[0]);
  return Shape{inputs[0].Dim(0), params_.out_channels, g.OutH(), g.OutW()};
}

Tensor ConvLayer::Forward(const std::vector<const Tensor*>& inputs) const {
  CCPERF_CHECK(inputs.size() == 1 && inputs[0] != nullptr, "conv arity");
  const Tensor& in = *inputs[0];
  const Shape out_shape = OutputShape({in.GetShape()});
  Tensor out(out_shape);

  const ConvGeometry g = GeometryFor(in.GetShape());
  const std::int64_t batch = in.GetShape().Dim(0);
  const std::int64_t groups = params_.groups;
  const std::int64_t group_in = in_channels_ / groups;
  const std::int64_t group_out = params_.out_channels / groups;
  const std::int64_t patch = g.PatchSize();
  const std::int64_t out_pixels = g.OutPixels();
  const std::int64_t in_plane = in.GetShape().Dim(2) * in.GetShape().Dim(3);

  std::vector<float> columns(
      static_cast<std::size_t>(patch * out_pixels));
  const std::span<const float> w = weights_.Data();
  const std::span<const float> b = bias_.Data();
  std::span<float> o = out.Data();
  const std::span<const float> x = in.Data();

  // Weights are invariant for the duration of a forward pass, so the dense
  // path packs each group's weight panel once here and reuses it for every
  // image in the batch. Packing is read-on-demand (not cached across calls)
  // because weights may be mutated in place without NotifyWeightsChanged.
  // The int8 path's quantized pack IS cached across calls (int8_groups_):
  // it is rebuilt by NotifyWeightsChanged alongside the sparse builds.
  std::vector<PackedA> packed_groups;
  if (format_ == KernelFormat::kFloat) {
    packed_groups.reserve(static_cast<std::size_t>(groups));
    for (std::int64_t grp = 0; grp < groups; ++grp) {
      packed_groups.push_back(PackA(
          group_out, patch,
          w.subspan(static_cast<std::size_t>(grp * group_out * patch),
                    static_cast<std::size_t>(group_out * patch))));
    }
  }

  for (std::int64_t img = 0; img < batch; ++img) {
    for (std::int64_t grp = 0; grp < groups; ++grp) {
      const std::int64_t in_off = (img * in_channels_ + grp * group_in) * in_plane;
      Im2Col(g, x.subspan(static_cast<std::size_t>(in_off),
                          static_cast<std::size_t>(group_in * in_plane)),
             columns);
      const std::int64_t out_off =
          (img * params_.out_channels + grp * group_out) * out_pixels;
      std::span<float> dst = o.subspan(static_cast<std::size_t>(out_off),
                                       static_cast<std::size_t>(group_out * out_pixels));
      switch (format_) {
        case KernelFormat::kCsr:
          csr_groups_[static_cast<std::size_t>(grp)].MultiplyDense(
              columns, out_pixels, dst);
          break;
        case KernelFormat::kBsr:
          bsr_groups_[static_cast<std::size_t>(grp)].MultiplyDense(
              columns, out_pixels, dst);
          break;
        case KernelFormat::kFloat:
          GemmPacked(packed_groups[static_cast<std::size_t>(grp)], out_pixels,
                     columns, dst);
          break;
        case KernelFormat::kInt8:
          // Bias rides the fused dequant epilogue; skip the float add below.
          GemmInt8(int8_groups_[static_cast<std::size_t>(grp)], out_pixels,
                   columns, dst,
                   {.bias = b.subspan(static_cast<std::size_t>(grp * group_out),
                                      static_cast<std::size_t>(group_out))});
          continue;
      }
      // Bias.
      for (std::int64_t oc = 0; oc < group_out; ++oc) {
        const float bias_v = b[static_cast<std::size_t>(grp * group_out + oc)];
        float* row = dst.data() + oc * out_pixels;
        for (std::int64_t p = 0; p < out_pixels; ++p) row[p] += bias_v;
      }
    }
  }
  return out;
}

LayerCost ConvLayer::Cost(const std::vector<Shape>& inputs) const {
  const ConvGeometry g = GeometryFor(inputs[0]);
  const std::int64_t batch = inputs[0].Dim(0);
  const double density = WeightDensity();
  LayerCost cost;
  // 2 flops per surviving MAC; sparse execution skips pruned weights.
  cost.flops = 2.0 * static_cast<double>(batch) *
               static_cast<double>(params_.out_channels / params_.groups) *
               static_cast<double>(g.PatchSize()) *
               static_cast<double>(g.OutPixels()) *
               static_cast<double>(params_.groups) * density;
  cost.weight_bytes =
      static_cast<double>(weights_.NumElements()) * sizeof(float) * density;
  const double in_bytes =
      static_cast<double>(inputs[0].NumElements()) * sizeof(float);
  // im2col inflates input reads by the patch overlap factor.
  const double inflate =
      static_cast<double>(g.kernel_h * g.kernel_w) /
      static_cast<double>(g.stride * g.stride);
  cost.activation_bytes =
      in_bytes * std::max(1.0, inflate) +
      static_cast<double>(OutputShape(inputs).NumElements()) * sizeof(float);
  return cost;
}

std::unique_ptr<Layer> ConvLayer::Clone() const {
  auto copy = std::make_unique<ConvLayer>(Name(), params_, in_channels_);
  copy->weights_ = weights_;
  copy->bias_ = bias_;
  copy->int8_enabled_ = int8_enabled_;
  copy->NotifyWeightsChanged();
  return copy;
}

void ConvLayer::SetInt8Execution(bool enabled) {
  if (int8_enabled_ == enabled) return;
  int8_enabled_ = enabled;
  NotifyWeightsChanged();  // re-dispatch and (re)build the cached format
}

void ConvLayer::NotifyWeightsChanged() {
  const std::int64_t groups = params_.groups;
  const std::int64_t group_out = params_.out_channels / groups;
  const std::int64_t patch = (in_channels_ / groups) * params_.kernel * params_.kernel;
  const std::span<const float> w = weights_.Data();
  const auto group_span = [&](std::int64_t grp) {
    return w.subspan(static_cast<std::size_t>(grp * group_out * patch),
                     static_cast<std::size_t>(group_out * patch));
  };
  // One kernel for the whole layer: density over all weights, block fill
  // averaged over the groups' (identically shaped) weight panels.
  const double density = WeightDensity();
  double fill = 0.0;
  for (std::int64_t grp = 0; grp < groups; ++grp) {
    fill += BsrMatrix::DenseBlockFill(group_out, patch, group_span(grp));
  }
  fill /= static_cast<double>(groups);
  format_ = ChooseKernelFormat(density, fill, int8_enabled_);

  // Only the dispatched format is built; stale builds for the other formats
  // are dropped so a weight edit can never execute against old weights.
  csr_groups_.clear();
  bsr_groups_.clear();
  int8_groups_.clear();
  for (std::int64_t grp = 0; grp < groups; ++grp) {
    switch (format_) {
      case KernelFormat::kCsr:
        csr_groups_.push_back(
            CsrMatrix::FromDense(group_out, patch, group_span(grp)));
        break;
      case KernelFormat::kBsr:
        bsr_groups_.push_back(
            BsrMatrix::FromDense(group_out, patch, group_span(grp)));
        break;
      case KernelFormat::kInt8:
        int8_groups_.push_back(
            QuantizePackA(group_out, patch, group_span(grp)));
        break;
      case KernelFormat::kFloat:
        break;
    }
    if (format_ == KernelFormat::kFloat) break;
  }
}

double ConvLayer::WeightDensity() const {
  return 1.0 - weights_.ZeroFraction();
}

}  // namespace ccperf::nn
