#include "nn/flops.h"

#include "common/check.h"

namespace ccperf::nn {

double NetworkCostReport::FlopsOfKind(LayerKind kind) const {
  double total = 0.0;
  for (const auto& l : layers) {
    if (l.kind == kind) total += l.cost.flops;
  }
  return total;
}

NetworkCostReport AnalyzeNetwork(const Network& net, std::int64_t batch) {
  CCPERF_CHECK(batch >= 1, "batch must be >= 1");
  NetworkCostReport report;
  const Shape in_shape{batch, net.InputShape().Dim(0), net.InputShape().Dim(1),
                       net.InputShape().Dim(2)};
  std::vector<Shape> shapes(net.LayerCount());
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    std::vector<Shape> ins;
    for (auto idx : net.NodeInputs(i)) {
      ins.push_back(idx < 0 ? in_shape : shapes[static_cast<std::size_t>(idx)]);
    }
    const Layer& layer = net.LayerAt(i);
    LayerCostInfo info;
    info.name = layer.Name();
    info.kind = layer.Kind();
    info.cost = layer.Cost(ins);
    info.output_shape = layer.OutputShape(ins);
    info.weight_density = layer.WeightDensity();
    shapes[i] = info.output_shape;
    report.total_flops += info.cost.flops;
    report.total_weight_bytes += info.cost.weight_bytes;
    report.total_activation_bytes += info.cost.activation_bytes;
    report.layers.push_back(std::move(info));
  }
  return report;
}

}  // namespace ccperf::nn
