// Max/average spatial pooling over NCHW tensors (Caffe ceil-mode semantics).
#pragma once

#include <memory>

#include "nn/layer.h"

namespace ccperf::nn {

/// Pooling configuration; square windows as used by CaffeNet/GoogLeNet.
struct PoolParams {
  std::int64_t kernel = 2;
  std::int64_t stride = 2;
  std::int64_t pad = 0;
};

/// Spatial pooling layer. Caffe rounds output extents *up* (ceil mode), which
/// is what makes GoogLeNet's 3x3/2 pools produce 28->14->7 maps; we match it.
class PoolLayer final : public Layer {
 public:
  PoolLayer(std::string name, LayerKind kind, PoolParams params);

  [[nodiscard]] const PoolParams& Params() const { return params_; }

  [[nodiscard]] Shape OutputShape(const std::vector<Shape>& inputs) const override;
  [[nodiscard]] Tensor Forward(const std::vector<const Tensor*>& inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> Clone() const override;

 private:
  PoolParams params_;
};

}  // namespace ccperf::nn
