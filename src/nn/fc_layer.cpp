#include "nn/fc_layer.h"

#include "common/check.h"
#include "tensor/gemm.h"

namespace ccperf::nn {

FcLayer::FcLayer(std::string name, std::int64_t in_features,
                 std::int64_t out_features)
    : Layer(std::move(name), LayerKind::kFullyConnected),
      in_features_(in_features),
      out_features_(out_features),
      weights_(Shape{out_features, in_features}),
      bias_(Shape{out_features}) {
  CCPERF_CHECK(in_features_ > 0 && out_features_ > 0, "invalid fc extents");
}

Shape FcLayer::OutputShape(const std::vector<Shape>& inputs) const {
  CCPERF_CHECK(inputs.size() == 1, "fc takes one input");
  const Shape& in = inputs[0];
  CCPERF_CHECK(in.Rank() == 4, "fc input must be NCHW");
  CCPERF_CHECK(in.Dim(1) * in.Dim(2) * in.Dim(3) == in_features_, "fc ",
               Name(), " expects ", in_features_, " features, got ",
               in.Dim(1) * in.Dim(2) * in.Dim(3));
  return Shape{in.Dim(0), out_features_, 1, 1};
}

Tensor FcLayer::Forward(const std::vector<const Tensor*>& inputs) const {
  CCPERF_CHECK(inputs.size() == 1 && inputs[0] != nullptr, "fc arity");
  const Tensor& in = *inputs[0];
  const Shape out_shape = OutputShape({in.GetShape()});
  Tensor out(out_shape);

  const std::int64_t batch = in.GetShape().Dim(0);
  const std::span<const float> x = in.Data();
  std::span<float> y = out.Data();
  const std::span<const float> b = bias_.Data();

  if (batch > 1) {
    // Batched fast path: y^T[out, batch] = W[out, in] * x^T[in, batch].
    // Orienting the product this way makes the weight matrix — invariant for
    // the duration of the pass — the stationary A operand (packed panels for
    // the dense GEMM, the cached CSR/BSR build for the sparse kernels), so
    // one blocked multiply serves the whole batch instead of a per-sample
    // vector multiply. The two transposes are O(batch * (in + out)) against
    // the multiply's O(batch * in * out).
    std::vector<float> xt(static_cast<std::size_t>(in_features_ * batch));
    for (std::int64_t img = 0; img < batch; ++img) {
      for (std::int64_t f = 0; f < in_features_; ++f) {
        xt[static_cast<std::size_t>(f * batch + img)] =
            x[static_cast<std::size_t>(img * in_features_ + f)];
      }
    }
    std::vector<float> yt(static_cast<std::size_t>(out_features_ * batch));
    // The int8 path fuses the bias into the dequant epilogue (one bias per
    // output row of y^T); the float paths add it during the transpose back.
    switch (format_) {
      case KernelFormat::kCsr:
        csr_.MultiplyDense(xt, batch, yt);
        break;
      case KernelFormat::kBsr:
        bsr_.MultiplyDense(xt, batch, yt);
        break;
      case KernelFormat::kFloat: {
        const PackedA packed =
            PackA(out_features_, in_features_, weights_.Data());
        GemmPacked(packed, batch, xt, yt);
        break;
      }
      case KernelFormat::kInt8:
        GemmInt8(int8_, batch, xt, yt, {.bias = b});
        break;
    }
    // Pure copy when the bias is already fused: adding 0.0f would turn a
    // -0.0 epilogue output into +0.0 and break bitwise invariants.
    const bool bias_fused = format_ == KernelFormat::kInt8;
    for (std::int64_t img = 0; img < batch; ++img) {
      for (std::int64_t o = 0; o < out_features_; ++o) {
        const float v = yt[static_cast<std::size_t>(o * batch + img)];
        y[static_cast<std::size_t>(img * out_features_ + o)] =
            bias_fused ? v : v + b[static_cast<std::size_t>(o)];
      }
    }
    return out;
  }

  for (std::int64_t img = 0; img < batch; ++img) {
    const std::span<const float> xi =
        x.subspan(static_cast<std::size_t>(img * in_features_),
                  static_cast<std::size_t>(in_features_));
    std::span<float> yi =
        y.subspan(static_cast<std::size_t>(img * out_features_),
                  static_cast<std::size_t>(out_features_));
    switch (format_) {
      case KernelFormat::kCsr:
        csr_.MultiplyVector(xi, yi);
        break;
      case KernelFormat::kBsr:
        bsr_.MultiplyVector(xi, yi);
        break;
      case KernelFormat::kFloat:
        Gemv(out_features_, in_features_, weights_.Data(), xi, yi);
        break;
      case KernelFormat::kInt8:
        // One-column GEMM with the bias fused; skip the float add below.
        GemmInt8(int8_, 1, xi, yi, {.bias = b});
        continue;
    }
    for (std::int64_t o = 0; o < out_features_; ++o) {
      yi[static_cast<std::size_t>(o)] += b[static_cast<std::size_t>(o)];
    }
  }
  return out;
}

LayerCost FcLayer::Cost(const std::vector<Shape>& inputs) const {
  const double density = WeightDensity();
  const std::int64_t batch = inputs[0].Dim(0);
  LayerCost cost;
  cost.flops = 2.0 * static_cast<double>(batch) *
               static_cast<double>(in_features_) *
               static_cast<double>(out_features_) * density;
  cost.weight_bytes =
      static_cast<double>(weights_.NumElements()) * sizeof(float) * density;
  cost.activation_bytes =
      static_cast<double>(inputs[0].NumElements() +
                          OutputShape(inputs).NumElements()) *
      sizeof(float);
  return cost;
}

std::unique_ptr<Layer> FcLayer::Clone() const {
  auto copy = std::make_unique<FcLayer>(Name(), in_features_, out_features_);
  copy->weights_ = weights_;
  copy->bias_ = bias_;
  copy->int8_enabled_ = int8_enabled_;
  copy->NotifyWeightsChanged();
  return copy;
}

void FcLayer::SetInt8Execution(bool enabled) {
  if (int8_enabled_ == enabled) return;
  int8_enabled_ = enabled;
  NotifyWeightsChanged();  // re-dispatch and (re)build the cached format
}

void FcLayer::NotifyWeightsChanged() {
  const double density = WeightDensity();
  const double fill =
      BsrMatrix::DenseBlockFill(out_features_, in_features_, weights_.Data());
  format_ = ChooseKernelFormat(density, fill, int8_enabled_);
  // Only the dispatched format is built; stale builds for the other formats
  // are dropped so a weight edit can never execute against old weights.
  csr_ = format_ == KernelFormat::kCsr
             ? CsrMatrix::FromDense(out_features_, in_features_,
                                    weights_.Data())
             : CsrMatrix();
  bsr_ = format_ == KernelFormat::kBsr
             ? BsrMatrix::FromDense(out_features_, in_features_,
                                    weights_.Data())
             : BsrMatrix();
  int8_ = format_ == KernelFormat::kInt8
              ? QuantizePackA(out_features_, in_features_, weights_.Data())
              : QuantizedPackedA();
}

double FcLayer::WeightDensity() const { return 1.0 - weights_.ZeroFraction(); }

}  // namespace ccperf::nn
