// Layer: the node type of the inference DAG.
//
// Every layer consumes one or more rank-4 NCHW tensors and produces one.
// Layers carrying weights (convolution, fully-connected) expose them for the
// pruning toolkit and rebuild their sparse execution state when notified.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ccperf::nn {

enum class LayerKind {
  kInput,
  kConvolution,
  kReLU,
  kLRN,
  kMaxPool,
  kAvgPool,
  kFullyConnected,
  kSoftmax,
  kConcat,
  kDropout,
};

/// Human-readable name of a layer kind ("conv", "fc", ...).
const char* LayerKindName(LayerKind kind);

/// Static cost of executing a layer once for a given input shape.
struct LayerCost {
  double flops = 0.0;             // floating-point ops (2 per MAC)
  double weight_bytes = 0.0;      // bytes of (surviving) parameters read
  double activation_bytes = 0.0;  // bytes of activations read + written
};

/// Abstract DAG node. Subclasses are value-like and deep-Clone()able so a
/// network can be duplicated per pruning variant.
class Layer {
 public:
  Layer(std::string name, LayerKind kind);
  virtual ~Layer();

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;
  Layer& operator=(Layer&&) = delete;

  [[nodiscard]] const std::string& Name() const { return name_; }
  [[nodiscard]] LayerKind Kind() const { return kind_; }

  /// Output shape for the given input shapes (batch included). Throws
  /// CheckError on incompatible inputs.
  [[nodiscard]] virtual Shape OutputShape(
      const std::vector<Shape>& inputs) const = 0;

  /// Run the layer. `inputs` are non-null and match the arity expected by
  /// OutputShape.
  [[nodiscard]] virtual Tensor Forward(
      const std::vector<const Tensor*>& inputs) const = 0;

  /// Per-execution cost model for one batch of the given input shapes.
  /// Weighted layers discount flops/weight bytes by parameter density.
  [[nodiscard]] virtual LayerCost Cost(const std::vector<Shape>& inputs) const;

  /// Deep copy (weights included).
  [[nodiscard]] virtual std::unique_ptr<Layer> Clone() const = 0;

  /// True if the layer owns prunable parameters.
  [[nodiscard]] virtual bool HasWeights() const { return false; }

  /// Mutable access to the weight tensor; throws if HasWeights() is false.
  /// Call NotifyWeightsChanged() after in-place edits.
  [[nodiscard]] virtual Tensor& MutableWeights();
  [[nodiscard]] virtual const Tensor& Weights() const;

  /// Mutable access to the bias vector; throws if HasWeights() is false.
  [[nodiscard]] virtual Tensor& MutableBias();
  [[nodiscard]] virtual const Tensor& Bias() const;

  /// Rebuild any cached execution state (e.g. CSR weights) after an edit.
  virtual void NotifyWeightsChanged() {}

  /// Fraction of nonzero weights in (0, 1]; 1.0 for weightless layers.
  [[nodiscard]] virtual double WeightDensity() const { return 1.0; }

  /// Opt this layer into (or out of) int8 quantized execution. Weighted
  /// layers re-dispatch their cached kernel format; the base class ignores
  /// the request (weightless layers have nothing to quantize).
  virtual void SetInt8Execution(bool) {}

  /// True if the layer is opted into int8 quantized execution (whether or
  /// not the dispatcher currently picks the int8 kernel over sparse).
  [[nodiscard]] virtual bool Int8Execution() const { return false; }

 protected:
  /// Subclasses are move-constructible (factories return them by value);
  /// use Clone() for copies.
  Layer(Layer&&) noexcept = default;

 private:
  std::string name_;
  LayerKind kind_;
};

}  // namespace ccperf::nn
