// 2-D convolution layer lowered to im2col + GEMM, with grouped convolution
// (AlexNet-style) and sparse execution paths (CSR / block-CSR) for pruned
// weights.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"
#include "tensor/im2col.h"
#include "tensor/quant.h"
#include "tensor/sparse.h"
#include "tensor/sparse_dispatch.h"

namespace ccperf::nn {

/// Configuration of a convolution layer.
struct ConvParams {
  std::int64_t out_channels = 0;
  std::int64_t kernel = 1;  // square kernels only (all models here use them)
  std::int64_t stride = 1;
  std::int64_t pad = 0;
  std::int64_t groups = 1;
};

/// Convolution over NCHW input. Weights are OIHW with I = in_channels/groups.
/// NotifyWeightsChanged() measures the weights' density and block fill and
/// asks ChooseKernelFormat (tensor/sparse_dispatch.h) which engine wins:
/// packed dense GEMM, blocked CSR, 4x4 block-CSR for block-structured
/// pruning, or the per-channel int8 GEMM when quantized execution is
/// enabled. Sparse and quantized builds are cached per group across forward
/// passes, so execution time falls with pruning/quantization — the core
/// mechanism of the paper's time-accuracy trade-off.
class ConvLayer final : public Layer {
 public:
  ConvLayer(std::string name, ConvParams params, std::int64_t in_channels);

  [[nodiscard]] const ConvParams& Params() const { return params_; }
  [[nodiscard]] std::int64_t InChannels() const { return in_channels_; }

  [[nodiscard]] Shape OutputShape(const std::vector<Shape>& inputs) const override;
  [[nodiscard]] Tensor Forward(const std::vector<const Tensor*>& inputs) const override;
  [[nodiscard]] LayerCost Cost(const std::vector<Shape>& inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> Clone() const override;

  [[nodiscard]] bool HasWeights() const override { return true; }
  [[nodiscard]] Tensor& MutableWeights() override { return weights_; }
  [[nodiscard]] const Tensor& Weights() const override { return weights_; }
  [[nodiscard]] Tensor& MutableBias() override { return bias_; }
  [[nodiscard]] const Tensor& Bias() const override { return bias_; }
  void NotifyWeightsChanged() override;
  [[nodiscard]] double WeightDensity() const override;
  void SetInt8Execution(bool enabled) override;
  [[nodiscard]] bool Int8Execution() const override { return int8_enabled_; }

  /// Packed-weight format the current forward pass dispatches to.
  [[nodiscard]] KernelFormat Format() const { return format_; }
  /// Sparse engine the format maps onto (kDense for float and int8).
  [[nodiscard]] SparseKernel Kernel() const { return ToSparseKernel(format_); }
  /// True if the current forward pass would take a sparse (CSR/BSR) path.
  [[nodiscard]] bool UsesSparsePath() const {
    return Kernel() != SparseKernel::kDense;
  }

 private:
  [[nodiscard]] ConvGeometry GeometryFor(const Shape& input) const;

  ConvParams params_;
  std::int64_t in_channels_;
  Tensor weights_;  // [out_c, in_c/groups, k, k]
  Tensor bias_;     // [out_c]
  bool int8_enabled_ = false;
  // Cached execution state, rebuilt by NotifyWeightsChanged(). One sparse /
  // quantized matrix per group ([out_c/g, patch]); only the dispatched
  // format is built.
  KernelFormat format_ = KernelFormat::kFloat;
  std::vector<CsrMatrix> csr_groups_;
  std::vector<BsrMatrix> bsr_groups_;
  std::vector<QuantizedPackedA> int8_groups_;
};

}  // namespace ccperf::nn
