// Weightless element-wise / row-wise layers: ReLU, Softmax, Dropout.
#pragma once

#include <memory>

#include "nn/layer.h"

namespace ccperf::nn {

/// Element-wise max(x, 0).
class ReluLayer final : public Layer {
 public:
  explicit ReluLayer(std::string name);
  [[nodiscard]] Shape OutputShape(const std::vector<Shape>& inputs) const override;
  [[nodiscard]] Tensor Forward(const std::vector<const Tensor*>& inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> Clone() const override;
};

/// Numerically-stable softmax over the channel axis of an NCHW tensor
/// (spatial extents must be 1x1, as at a classifier head).
class SoftmaxLayer final : public Layer {
 public:
  explicit SoftmaxLayer(std::string name);
  [[nodiscard]] Shape OutputShape(const std::vector<Shape>& inputs) const override;
  [[nodiscard]] Tensor Forward(const std::vector<const Tensor*>& inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> Clone() const override;
};

/// Inference-mode dropout: identity (Caffe scales at train time).
class DropoutLayer final : public Layer {
 public:
  explicit DropoutLayer(std::string name);
  [[nodiscard]] Shape OutputShape(const std::vector<Shape>& inputs) const override;
  [[nodiscard]] Tensor Forward(const std::vector<const Tensor*>& inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> Clone() const override;
};

}  // namespace ccperf::nn
