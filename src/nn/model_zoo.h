// Model builders for the paper's two applications plus a test-scale CNN.
//
// CaffeNet follows the Caffe bvlc_reference_caffenet deploy topology (the
// paper's Table 1 / Figure 1); GoogLeNet follows Szegedy et al.'s Inception
// v1 with 2 stem convolutions and 9 inception modules of 6 convolutions each
// (the paper's "56 convolution layers"). `channel_scale` shrinks channel and
// feature counts uniformly for laptop-scale tests without changing topology.
#pragma once

#include <cstdint>

#include "nn/network.h"

namespace ccperf::nn {

/// Knobs shared by all builders.
struct ModelConfig {
  /// Multiplies every channel/feature count (grouped layers round to a
  /// multiple of their group count). 1.0 = the paper's full-size model.
  double channel_scale = 1.0;
  /// Output classes (ImageNet = 1000).
  std::int64_t num_classes = 1000;
  /// Seed for synthetic pretrained weights; 0 leaves weights zero.
  std::uint64_t weight_seed = 42;
};

/// CaffeNet (AlexNet) — 5 conv + 3 fc layers, 227x227x3 input.
/// Note: the paper's Table 1 quotes 224x224 following AlexNet convention;
/// Caffe's actual deploy input producing 55x55 conv1 maps is 227x227.
Network BuildCaffeNet(const ModelConfig& config = {});

/// GoogLeNet (Inception v1) — 224x224x3 input, 1024-d average-pooled head.
Network BuildGoogLeNet(const ModelConfig& config = {});

/// Small 16x16 CNN (2 conv + 2 fc) for unit/integration tests.
Network BuildTinyCnn(const ModelConfig& config = {});

}  // namespace ccperf::nn
