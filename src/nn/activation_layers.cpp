#include "nn/activation_layers.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ccperf::nn {

ReluLayer::ReluLayer(std::string name)
    : Layer(std::move(name), LayerKind::kReLU) {}

Shape ReluLayer::OutputShape(const std::vector<Shape>& inputs) const {
  CCPERF_CHECK(inputs.size() == 1, "relu takes one input");
  return inputs[0];
}

Tensor ReluLayer::Forward(const std::vector<const Tensor*>& inputs) const {
  CCPERF_CHECK(inputs.size() == 1 && inputs[0] != nullptr, "relu arity");
  Tensor out = *inputs[0];
  for (float& v : out.Data()) v = std::max(v, 0.0f);
  return out;
}

std::unique_ptr<Layer> ReluLayer::Clone() const {
  return std::make_unique<ReluLayer>(Name());
}

SoftmaxLayer::SoftmaxLayer(std::string name)
    : Layer(std::move(name), LayerKind::kSoftmax) {}

Shape SoftmaxLayer::OutputShape(const std::vector<Shape>& inputs) const {
  CCPERF_CHECK(inputs.size() == 1, "softmax takes one input");
  CCPERF_CHECK(inputs[0].Rank() == 4 && inputs[0].Dim(2) == 1 &&
                   inputs[0].Dim(3) == 1,
               "softmax expects [N,C,1,1], got ", inputs[0].ToString());
  return inputs[0];
}

Tensor SoftmaxLayer::Forward(const std::vector<const Tensor*>& inputs) const {
  CCPERF_CHECK(inputs.size() == 1 && inputs[0] != nullptr, "softmax arity");
  const Tensor& in = *inputs[0];
  (void)OutputShape({in.GetShape()});
  Tensor out = in;
  const std::int64_t batch = in.GetShape().Dim(0);
  const std::int64_t classes = in.GetShape().Dim(1);
  float* data = out.Data().data();
  for (std::int64_t b = 0; b < batch; ++b) {
    float* row = data + b * classes;
    const float mx = *std::max_element(row, row + classes);
    float sum = 0.0f;
    for (std::int64_t c = 0; c < classes; ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (std::int64_t c = 0; c < classes; ++c) row[c] /= sum;
  }
  return out;
}

std::unique_ptr<Layer> SoftmaxLayer::Clone() const {
  return std::make_unique<SoftmaxLayer>(Name());
}

DropoutLayer::DropoutLayer(std::string name)
    : Layer(std::move(name), LayerKind::kDropout) {}

Shape DropoutLayer::OutputShape(const std::vector<Shape>& inputs) const {
  CCPERF_CHECK(inputs.size() == 1, "dropout takes one input");
  return inputs[0];
}

Tensor DropoutLayer::Forward(const std::vector<const Tensor*>& inputs) const {
  CCPERF_CHECK(inputs.size() == 1 && inputs[0] != nullptr, "dropout arity");
  return *inputs[0];
}

std::unique_ptr<Layer> DropoutLayer::Clone() const {
  return std::make_unique<DropoutLayer>(Name());
}

}  // namespace ccperf::nn
