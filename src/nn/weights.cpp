#include "nn/weights.h"

#include <cmath>

#include "common/rng.h"

namespace ccperf::nn {

std::uint64_t HashName(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void InitializePretrainedWeights(Network& net, std::uint64_t seed) {
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    Layer& layer = net.LayerAt(i);
    if (!layer.HasWeights()) continue;
    Rng rng(seed ^ HashName(layer.Name()));
    Tensor& w = layer.MutableWeights();
    // Fan-in = elements per output unit (dim 0 is the output axis for both
    // OIHW conv weights and [out, in] FC weights).
    const auto fan_in = static_cast<double>(
        w.NumElements() / std::max<std::int64_t>(1, w.GetShape().Dim(0)));
    const float stddev =
        static_cast<float>(std::sqrt(2.0 / std::max(1.0, fan_in)));
    w.FillGaussian(rng, 0.0f, stddev);
    Tensor& b = layer.MutableBias();
    b.FillGaussian(rng, 0.01f, 0.005f);
    layer.NotifyWeightsChanged();
  }
}

}  // namespace ccperf::nn
