#include <cmath>
#include <memory>
#include <string>

#include "common/check.h"
#include "nn/activation_layers.h"
#include "nn/concat_layer.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/lrn_layer.h"
#include "nn/model_zoo.h"
#include "nn/pool_layer.h"
#include "nn/weights.h"

namespace ccperf::nn {

namespace {

std::int64_t Scaled(std::int64_t channels, double scale) {
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::llround(static_cast<double>(channels) * scale)));
}

/// Branch widths of one inception module (Szegedy et al., Table 1).
struct InceptionSpec {
  std::int64_t p1x1;       // 1x1 branch
  std::int64_t p3x3_red;   // 3x3 reduce
  std::int64_t p3x3;       // 3x3 branch
  std::int64_t p5x5_red;   // 5x5 reduce
  std::int64_t p5x5;       // 5x5 branch
  std::int64_t pool_proj;  // pool projection
};

/// Adds a conv + relu pair and returns the conv layer name.
std::string ConvRelu(Network& net, const std::string& name,
                     std::int64_t in_channels, std::int64_t out_channels,
                     std::int64_t kernel, std::int64_t pad,
                     const std::string& from) {
  net.Add(std::make_unique<ConvLayer>(
              name,
              ConvParams{.out_channels = out_channels, .kernel = kernel,
                         .stride = 1, .pad = pad},
              in_channels),
          {from});
  net.Add(std::make_unique<ReluLayer>("relu-" + name), {name});
  return "relu-" + name;
}

/// Adds one inception module; returns (output layer name, output channels).
std::pair<std::string, std::int64_t> Inception(Network& net,
                                               const std::string& id,
                                               std::int64_t in_channels,
                                               const InceptionSpec& spec,
                                               const std::string& from) {
  const std::string base = "inception-" + id;
  const std::string b1 =
      ConvRelu(net, base + "-1x1", in_channels, spec.p1x1, 1, 0, from);
  const std::string r3 = ConvRelu(net, base + "-3x3-reduce", in_channels,
                                  spec.p3x3_red, 1, 0, from);
  const std::string b3 =
      ConvRelu(net, base + "-3x3", spec.p3x3_red, spec.p3x3, 3, 1, r3);
  const std::string r5 = ConvRelu(net, base + "-5x5-reduce", in_channels,
                                  spec.p5x5_red, 1, 0, from);
  const std::string b5 =
      ConvRelu(net, base + "-5x5", spec.p5x5_red, spec.p5x5, 5, 2, r5);
  net.Add(std::make_unique<PoolLayer>(
              base + "-pool", LayerKind::kMaxPool,
              PoolParams{.kernel = 3, .stride = 1, .pad = 1}),
          {from});
  const std::string bp = ConvRelu(net, base + "-pool-proj", in_channels,
                                  spec.pool_proj, 1, 0, base + "-pool");
  net.Add(std::make_unique<ConcatLayer>(base + "-output"), {b1, b3, b5, bp});
  return {base + "-output",
          spec.p1x1 + spec.p3x3 + spec.p5x5 + spec.pool_proj};
}

}  // namespace

Network BuildGoogLeNet(const ModelConfig& config) {
  CCPERF_CHECK(config.channel_scale > 0.0 && config.channel_scale <= 4.0,
               "channel_scale out of range");
  const double s = config.channel_scale;
  auto sc = [s](std::int64_t c) { return Scaled(c, s); };
  auto spec = [&sc](std::int64_t a, std::int64_t b, std::int64_t c,
                    std::int64_t d, std::int64_t e, std::int64_t f) {
    return InceptionSpec{sc(a), sc(b), sc(c), sc(d), sc(e), sc(f)};
  };

  Network net("googlenet", Shape{3, 224, 224});

  // Stem.
  const std::int64_t c1 = sc(64);
  net.Add(std::make_unique<ConvLayer>(
      "conv1-7x7-s2",
      ConvParams{.out_channels = c1, .kernel = 7, .stride = 2, .pad = 3}, 3));
  net.Add(std::make_unique<ReluLayer>("relu-conv1"));
  net.Add(std::make_unique<PoolLayer>("pool1-3x3-s2", LayerKind::kMaxPool,
                                      PoolParams{.kernel = 3, .stride = 2}));
  net.Add(std::make_unique<LrnLayer>("pool1-norm1"));
  const std::int64_t c2r = sc(64);
  const std::string r2r =
      ConvRelu(net, "conv2-3x3-reduce", c1, c2r, 1, 0, "pool1-norm1");
  const std::int64_t c2 = sc(192);
  const std::string r2 = ConvRelu(net, "conv2-3x3", c2r, c2, 3, 1, r2r);
  net.Add(std::make_unique<LrnLayer>("conv2-norm2"), {r2});
  net.Add(std::make_unique<PoolLayer>("pool2-3x3-s2", LayerKind::kMaxPool,
                                      PoolParams{.kernel = 3, .stride = 2}),
          {"conv2-norm2"});

  // Inception stacks.
  auto [out3a, ch3a] = Inception(net, "3a", c2, spec(64, 96, 128, 16, 32, 32),
                                 "pool2-3x3-s2");
  auto [out3b, ch3b] =
      Inception(net, "3b", ch3a, spec(128, 128, 192, 32, 96, 64), out3a);
  net.Add(std::make_unique<PoolLayer>("pool3-3x3-s2", LayerKind::kMaxPool,
                                      PoolParams{.kernel = 3, .stride = 2}),
          {out3b});

  auto [out4a, ch4a] = Inception(net, "4a", ch3b,
                                 spec(192, 96, 208, 16, 48, 64), "pool3-3x3-s2");
  auto [out4b, ch4b] =
      Inception(net, "4b", ch4a, spec(160, 112, 224, 24, 64, 64), out4a);
  auto [out4c, ch4c] =
      Inception(net, "4c", ch4b, spec(128, 128, 256, 24, 64, 64), out4b);
  auto [out4d, ch4d] =
      Inception(net, "4d", ch4c, spec(112, 144, 288, 32, 64, 64), out4c);
  auto [out4e, ch4e] =
      Inception(net, "4e", ch4d, spec(256, 160, 320, 32, 128, 128), out4d);
  net.Add(std::make_unique<PoolLayer>("pool4-3x3-s2", LayerKind::kMaxPool,
                                      PoolParams{.kernel = 3, .stride = 2}),
          {out4e});

  auto [out5a, ch5a] = Inception(net, "5a", ch4e,
                                 spec(256, 160, 320, 32, 128, 128),
                                 "pool4-3x3-s2");
  auto [out5b, ch5b] =
      Inception(net, "5b", ch5a, spec(384, 192, 384, 48, 128, 128), out5a);

  // Head.
  net.Add(std::make_unique<PoolLayer>("pool5-7x7-s1", LayerKind::kAvgPool,
                                      PoolParams{.kernel = 7, .stride = 1}),
          {out5b});
  net.Add(std::make_unique<DropoutLayer>("pool5-drop"));
  net.Add(std::make_unique<FcLayer>("loss3-classifier", ch5b,
                                    config.num_classes));
  net.Add(std::make_unique<SoftmaxLayer>("prob"));

  if (config.weight_seed != 0) {
    InitializePretrainedWeights(net, config.weight_seed);
  }
  return net;
}

}  // namespace ccperf::nn
