#include "nn/layer.h"

#include "common/check.h"

namespace ccperf::nn {

const char* LayerKindName(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput: return "input";
    case LayerKind::kConvolution: return "conv";
    case LayerKind::kReLU: return "relu";
    case LayerKind::kLRN: return "lrn";
    case LayerKind::kMaxPool: return "maxpool";
    case LayerKind::kAvgPool: return "avgpool";
    case LayerKind::kFullyConnected: return "fc";
    case LayerKind::kSoftmax: return "softmax";
    case LayerKind::kConcat: return "concat";
    case LayerKind::kDropout: return "dropout";
  }
  return "?";
}

Layer::Layer(std::string name, LayerKind kind)
    : name_(std::move(name)), kind_(kind) {
  CCPERF_CHECK(!name_.empty(), "layer needs a name");
}

Layer::~Layer() = default;

LayerCost Layer::Cost(const std::vector<Shape>& inputs) const {
  // Default: pure data movement, one read + one write of the activations.
  LayerCost cost;
  double in_bytes = 0.0;
  for (const auto& s : inputs) {
    in_bytes += static_cast<double>(s.NumElements()) * sizeof(float);
  }
  const double out_bytes =
      static_cast<double>(OutputShape(inputs).NumElements()) * sizeof(float);
  cost.activation_bytes = in_bytes + out_bytes;
  return cost;
}

Tensor& Layer::MutableWeights() {
  CCPERF_CHECK(false, "layer '", name_, "' has no weights");
}

const Tensor& Layer::Weights() const {
  CCPERF_CHECK(false, "layer '", name_, "' has no weights");
}

Tensor& Layer::MutableBias() {
  CCPERF_CHECK(false, "layer '", name_, "' has no bias");
}

const Tensor& Layer::Bias() const {
  CCPERF_CHECK(false, "layer '", name_, "' has no bias");
}

}  // namespace ccperf::nn
