#include "nn/model_parser.h"

#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "nn/activation_layers.h"
#include "nn/concat_layer.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/lrn_layer.h"
#include "nn/pool_layer.h"
#include "nn/weights.h"

namespace ccperf::nn {

namespace {

/// One parsed directive line.
struct Line {
  int number = 0;
  std::string directive;
  std::string name;
  std::map<std::string, std::string> keys;
  std::vector<std::string> from;
};

std::vector<std::string> SplitWhitespace(const std::string& s) {
  std::istringstream iss(s);
  std::vector<std::string> tokens;
  std::string token;
  while (iss >> token) tokens.push_back(token);
  return tokens;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream iss(s);
  while (std::getline(iss, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

std::int64_t GetInt(const Line& line, const std::string& key,
                    std::int64_t fallback, bool required = false) {
  const auto it = line.keys.find(key);
  if (it == line.keys.end()) {
    CCPERF_CHECK(!required, "line ", line.number, ": '", line.directive,
                 "' requires ", key, "=<int>");
    return fallback;
  }
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    CCPERF_CHECK(false, "line ", line.number, ": bad integer for ", key);
  }
}

float GetFloat(const Line& line, const std::string& key, float fallback) {
  const auto it = line.keys.find(key);
  if (it == line.keys.end()) return fallback;
  try {
    return std::stof(it->second);
  } catch (const std::exception&) {
    CCPERF_CHECK(false, "line ", line.number, ": bad number for ", key);
  }
}

Line ParseLine(const std::string& raw, int number) {
  Line line;
  line.number = number;
  // Strip comments.
  std::string body = raw.substr(0, raw.find('#'));
  const auto tokens = SplitWhitespace(body);
  if (tokens.empty()) return line;  // blank
  line.directive = tokens[0];
  std::size_t first_kv = 1;
  if (line.directive != "network" && line.directive != "input") {
    CCPERF_CHECK(tokens.size() >= 2 && tokens[1].find('=') == std::string::npos,
                 "line ", number, ": '", line.directive,
                 "' needs a layer name");
    line.name = tokens[1];
    first_kv = 2;
  } else if (tokens.size() >= 2) {
    line.name = tokens[1];  // network name / first input dim
    first_kv = 2;
  }
  for (std::size_t i = first_kv; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      // Bare tokens after `input` are extra dims; keep them as keys d2/d3.
      CCPERF_CHECK(line.directive == "input", "line ", number,
                   ": expected key=value, got '", tokens[i], "'");
      line.keys["d" + std::to_string(i)] = tokens[i];
      continue;
    }
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    if (key == "from") {
      line.from = SplitCommas(value);
    } else {
      line.keys[key] = value;
    }
  }
  return line;
}

}  // namespace

Network ParseModel(const std::string& text, std::uint64_t weight_seed) {
  std::istringstream iss(text);
  std::string raw;
  int number = 0;

  std::string net_name = "parsed";
  bool seen_input = false;
  Shape input_shape;
  std::unique_ptr<Network> net;
  // Batch-1 output shape of every named layer, for channel inference.
  std::map<std::string, Shape> shapes;

  auto shape_of = [&](const Line& line,
                      const std::string& name) -> const Shape& {
    const auto it = shapes.find(name);
    CCPERF_CHECK(it != shapes.end(), "line ", line.number,
                 ": unknown source layer '", name, "'");
    return it->second;
  };
  std::string last_name = "input";
  while (std::getline(iss, raw)) {
    ++number;
    const Line line = ParseLine(raw, number);
    if (line.directive.empty()) continue;

    if (line.directive == "network") {
      CCPERF_CHECK(!line.name.empty(), "line ", number, ": network needs a name");
      net_name = line.name;
      continue;
    }
    if (line.directive == "input") {
      CCPERF_CHECK(!seen_input, "line ", number, ": duplicate input");
      std::vector<std::int64_t> dims;
      try {
        dims.push_back(std::stoll(line.name));
        for (const auto& [_, v] : line.keys) dims.push_back(std::stoll(v));
      } catch (const std::exception&) {
        CCPERF_CHECK(false, "line ", number, ": bad input dims");
      }
      CCPERF_CHECK(dims.size() == 3, "line ", number,
                   ": input needs exactly C H W, got ", dims.size(), " dims");
      input_shape = Shape(std::move(dims));
      net = std::make_unique<Network>(net_name, input_shape);
      shapes["input"] = Shape{1, input_shape.Dim(0), input_shape.Dim(1),
                              input_shape.Dim(2)};
      seen_input = true;
      continue;
    }

    CCPERF_CHECK(seen_input, "line ", number,
                 ": 'input C H W' must precede layers");
    std::vector<std::string> from = line.from;
    if (from.empty()) from.push_back(last_name);
    std::vector<Shape> in_shapes;
    for (const auto& f : from) in_shapes.push_back(shape_of(line, f));
    const Shape& in0 = in_shapes.front();

    std::unique_ptr<Layer> layer;
    if (line.directive == "conv") {
      ConvParams params;
      params.out_channels = GetInt(line, "out", 0, /*required=*/true);
      params.kernel = GetInt(line, "kernel", 1);
      params.stride = GetInt(line, "stride", 1);
      params.pad = GetInt(line, "pad", 0);
      params.groups = GetInt(line, "groups", 1);
      layer = std::make_unique<ConvLayer>(line.name, params, in0.Dim(1));
    } else if (line.directive == "fc") {
      const std::int64_t out = GetInt(line, "out", 0, /*required=*/true);
      layer = std::make_unique<FcLayer>(
          line.name, in0.Dim(1) * in0.Dim(2) * in0.Dim(3), out);
    } else if (line.directive == "maxpool" || line.directive == "avgpool") {
      PoolParams params;
      params.kernel = GetInt(line, "kernel", 2);
      params.stride = GetInt(line, "stride", 2);
      params.pad = GetInt(line, "pad", 0);
      layer = std::make_unique<PoolLayer>(
          line.name,
          line.directive == "maxpool" ? LayerKind::kMaxPool
                                      : LayerKind::kAvgPool,
          params);
    } else if (line.directive == "lrn") {
      LrnParams params;
      params.local_size = GetInt(line, "size", 5);
      params.alpha = GetFloat(line, "alpha", 1e-4f);
      params.beta = GetFloat(line, "beta", 0.75f);
      params.k = GetFloat(line, "k", 1.0f);
      layer = std::make_unique<LrnLayer>(line.name, params);
    } else if (line.directive == "relu") {
      layer = std::make_unique<ReluLayer>(line.name);
    } else if (line.directive == "softmax") {
      layer = std::make_unique<SoftmaxLayer>(line.name);
    } else if (line.directive == "dropout") {
      layer = std::make_unique<DropoutLayer>(line.name);
    } else if (line.directive == "concat") {
      layer = std::make_unique<ConcatLayer>(line.name);
    } else {
      CCPERF_CHECK(false, "line ", number, ": unknown directive '",
                   line.directive, "'");
    }

    // Validate shapes eagerly so errors carry the line number.
    Shape out_shape;
    try {
      out_shape = layer->OutputShape(in_shapes);
    } catch (const CheckError& e) {
      CCPERF_CHECK(false, "line ", number, ": ", e.what());
    }
    shapes[line.name] = out_shape;
    net->Add(std::move(layer), from);
    last_name = line.name;
  }

  CCPERF_CHECK(net != nullptr && net->LayerCount() > 0,
               "model text defines no layers");
  if (weight_seed != 0) InitializePretrainedWeights(*net, weight_seed);
  return std::move(*net);
}

Network ParseModelFile(const std::string& path, std::uint64_t weight_seed) {
  std::ifstream in(path);
  CCPERF_CHECK(in.good(), "cannot open model file '", path, "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  CCPERF_CHECK(!in.bad(), "read failed for model file '", path, "'");
  try {
    return ParseModel(buffer.str(), weight_seed);
  } catch (const CheckError& error) {
    // Re-raise with the path so the error stays actionable when many model
    // files are loaded in one run; the line context is in error.what().
    CCPERF_CHECK(false, "model file '", path, "': ", error.what());
  }
}

std::string FormatModel(const Network& net) {
  std::ostringstream out;
  out << "network " << net.Name() << "\n";
  out << "input " << net.InputShape().Dim(0) << " " << net.InputShape().Dim(1)
      << " " << net.InputShape().Dim(2) << "\n";
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    const Layer& layer = net.LayerAt(i);
    switch (layer.Kind()) {
      case LayerKind::kConvolution: {
        const auto& conv = static_cast<const ConvLayer&>(layer);
        out << "conv " << conv.Name() << " out=" << conv.Params().out_channels
            << " kernel=" << conv.Params().kernel
            << " stride=" << conv.Params().stride
            << " pad=" << conv.Params().pad;
        if (conv.Params().groups != 1) out << " groups=" << conv.Params().groups;
        break;
      }
      case LayerKind::kFullyConnected: {
        const auto& fc = static_cast<const FcLayer&>(layer);
        out << "fc " << fc.Name() << " out=" << fc.OutFeatures();
        break;
      }
      case LayerKind::kMaxPool:
      case LayerKind::kAvgPool: {
        const auto& pool = static_cast<const PoolLayer&>(layer);
        out << (layer.Kind() == LayerKind::kMaxPool ? "maxpool " : "avgpool ")
            << pool.Name() << " kernel=" << pool.Params().kernel
            << " stride=" << pool.Params().stride;
        if (pool.Params().pad != 0) out << " pad=" << pool.Params().pad;
        break;
      }
      case LayerKind::kLRN: {
        const auto& lrn = static_cast<const LrnLayer&>(layer);
        out << "lrn " << lrn.Name() << " size=" << lrn.Params().local_size;
        break;
      }
      case LayerKind::kReLU: out << "relu " << layer.Name(); break;
      case LayerKind::kSoftmax: out << "softmax " << layer.Name(); break;
      case LayerKind::kDropout: out << "dropout " << layer.Name(); break;
      case LayerKind::kConcat: out << "concat " << layer.Name(); break;
      case LayerKind::kInput: break;
    }
    // Emit explicit wiring when it deviates from simple chaining.
    const auto& inputs = net.NodeInputs(i);
    const bool chains = inputs.size() == 1 &&
                        inputs[0] == static_cast<std::int64_t>(i) - 1;
    if (!chains) {
      out << " from=";
      for (std::size_t k = 0; k < inputs.size(); ++k) {
        if (k) out << ",";
        out << (inputs[k] < 0
                    ? "input"
                    : net.LayerAt(static_cast<std::size_t>(inputs[k])).Name());
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace ccperf::nn
