// Binary network serialization: persist a (possibly pruned/quantized)
// network — topology, hyper-parameters and weights — and load it back
// bit-exactly. Lets a measurement campaign cache its variants instead of
// re-pruning from scratch.
//
// Format (little-endian): "CCPF" magic, u32 version, name, CHW input shape,
// then one tagged record per layer in topological order.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/network.h"

namespace ccperf::nn {

/// Serialize `net` to a stream. Throws CheckError on I/O failure.
void SaveNetwork(const Network& net, std::ostream& out);

/// Serialize to a file path.
void SaveNetworkToFile(const Network& net, const std::string& path);

/// Reconstruct a network from a stream; validates magic/version and layer
/// wiring. Weighted layers come back with cached sparse state rebuilt.
[[nodiscard]] Network LoadNetwork(std::istream& in);

/// Load from a file path.
[[nodiscard]] Network LoadNetworkFromFile(const std::string& path);

}  // namespace ccperf::nn
