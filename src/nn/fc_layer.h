// Fully-connected (inner product) layer with dense, CSR, and block-CSR
// execution paths.
#pragma once

#include <memory>

#include "nn/layer.h"
#include "tensor/quant.h"
#include "tensor/sparse.h"
#include "tensor/sparse_dispatch.h"

namespace ccperf::nn {

/// y = W x + b over the flattened C*H*W input of each batch element.
/// Output shape is [N, out_features, 1, 1]. NotifyWeightsChanged()
/// dispatches to the fastest kernel for the weights' measured density and
/// block fill (tensor/sparse_dispatch.h) and caches the sparse build.
/// Batched inputs run one blocked multiply against the transposed batch on
/// every path; batch 1 keeps the latency-oriented vector kernels.
class FcLayer final : public Layer {
 public:
  FcLayer(std::string name, std::int64_t in_features,
          std::int64_t out_features);

  [[nodiscard]] std::int64_t InFeatures() const { return in_features_; }
  [[nodiscard]] std::int64_t OutFeatures() const { return out_features_; }

  [[nodiscard]] Shape OutputShape(const std::vector<Shape>& inputs) const override;
  [[nodiscard]] Tensor Forward(const std::vector<const Tensor*>& inputs) const override;
  [[nodiscard]] LayerCost Cost(const std::vector<Shape>& inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> Clone() const override;

  [[nodiscard]] bool HasWeights() const override { return true; }
  [[nodiscard]] Tensor& MutableWeights() override { return weights_; }
  [[nodiscard]] const Tensor& Weights() const override { return weights_; }
  [[nodiscard]] Tensor& MutableBias() override { return bias_; }
  [[nodiscard]] const Tensor& Bias() const override { return bias_; }
  void NotifyWeightsChanged() override;
  [[nodiscard]] double WeightDensity() const override;
  void SetInt8Execution(bool enabled) override;
  [[nodiscard]] bool Int8Execution() const override { return int8_enabled_; }

  /// Packed-weight format the current forward pass dispatches to.
  [[nodiscard]] KernelFormat Format() const { return format_; }
  /// Sparse engine the format maps onto (kDense for float and int8).
  [[nodiscard]] SparseKernel Kernel() const { return ToSparseKernel(format_); }
  /// True if the current forward pass would take a sparse (CSR/BSR) path.
  [[nodiscard]] bool UsesSparsePath() const {
    return Kernel() != SparseKernel::kDense;
  }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  Tensor weights_;  // [out_features, in_features]
  Tensor bias_;     // [out_features]
  bool int8_enabled_ = false;
  // Cached execution state, rebuilt by NotifyWeightsChanged(); only the
  // dispatched format is built.
  KernelFormat format_ = KernelFormat::kFloat;
  CsrMatrix csr_;
  BsrMatrix bsr_;
  QuantizedPackedA int8_;
};

}  // namespace ccperf::nn
