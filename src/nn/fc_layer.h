// Fully-connected (inner product) layer with dense and CSR sparse paths.
#pragma once

#include <memory>

#include "nn/layer.h"
#include "tensor/sparse.h"

namespace ccperf::nn {

/// y = W x + b over the flattened C*H*W input of each batch element.
/// Output shape is [N, out_features, 1, 1].
class FcLayer final : public Layer {
 public:
  /// Density below which the CSR path is used.
  static constexpr double kSparseThreshold = 0.65;

  FcLayer(std::string name, std::int64_t in_features,
          std::int64_t out_features);

  [[nodiscard]] std::int64_t InFeatures() const { return in_features_; }
  [[nodiscard]] std::int64_t OutFeatures() const { return out_features_; }

  [[nodiscard]] Shape OutputShape(const std::vector<Shape>& inputs) const override;
  [[nodiscard]] Tensor Forward(const std::vector<const Tensor*>& inputs) const override;
  [[nodiscard]] LayerCost Cost(const std::vector<Shape>& inputs) const override;
  [[nodiscard]] std::unique_ptr<Layer> Clone() const override;

  [[nodiscard]] bool HasWeights() const override { return true; }
  [[nodiscard]] Tensor& MutableWeights() override { return weights_; }
  [[nodiscard]] const Tensor& Weights() const override { return weights_; }
  [[nodiscard]] Tensor& MutableBias() override { return bias_; }
  [[nodiscard]] const Tensor& Bias() const override { return bias_; }
  void NotifyWeightsChanged() override;
  [[nodiscard]] double WeightDensity() const override;

  [[nodiscard]] bool UsesSparsePath() const { return use_sparse_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  Tensor weights_;  // [out_features, in_features]
  Tensor bias_;     // [out_features]
  bool use_sparse_ = false;
  CsrMatrix sparse_;
};

}  // namespace ccperf::nn
