// A small text DSL for describing networks — a Caffe-prototxt-inspired
// format so users can define their own applications without writing C++.
//
//   network tinycnn
//   input 3 16 16
//   conv  conv1 out=8 kernel=3 stride=1 pad=1
//   relu  relu1
//   maxpool pool1 kernel=2 stride=2
//   conv  conv2 out=16 kernel=3 pad=1 groups=2
//   relu  relu2  from=conv2
//   fc    fc1 out=32
//   softmax prob
//
// Rules: one directive per line; '#' starts a comment; layers chain onto
// the previous layer unless `from=<name>` (or `from=a,b,...` for concat)
// says otherwise; conv in-channels and fc in-features are inferred from the
// input shape. Keys: out, kernel, stride, pad, groups (conv); kernel,
// stride, pad (pools); size, alpha, beta, k (lrn); out (fc).
#pragma once

#include <string>

#include "nn/network.h"

namespace ccperf::nn {

/// Build a network from the DSL text. Throws CheckError with the offending
/// line number on malformed input.
[[nodiscard]] Network ParseModel(const std::string& text,
                                 std::uint64_t weight_seed = 0);

/// Load and parse a model description file.
[[nodiscard]] Network ParseModelFile(const std::string& path,
                                     std::uint64_t weight_seed = 0);

/// Render a network back into the DSL (topology only, no weights) — useful
/// for inspecting programmatically-built models.
[[nodiscard]] std::string FormatModel(const Network& net);

}  // namespace ccperf::nn
