// Synthetic stand-in for the paper's 50,000-image ImageNet inference set.
//
// Each class has a deterministic spatial signature (a small set of 2-D
// sinusoid components); an image is its class signature plus iid Gaussian
// noise. Images are generated on demand from (seed, index) so a million-image
// workload needs no storage, and the pipeline exercises the exact batching
// and inference code paths the real dataset would.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ccperf::data {

/// Deterministic class-conditional image source.
class SyntheticImageDataset {
 public:
  /// `chw` is the per-image shape; `size` is the nominal dataset size used
  /// for bounds checking of indices.
  SyntheticImageDataset(Shape chw, std::int64_t num_classes,
                        std::int64_t size, std::uint64_t seed,
                        float noise_stddev = 0.5f);

  [[nodiscard]] std::int64_t Size() const { return size_; }
  [[nodiscard]] std::int64_t NumClasses() const { return num_classes_; }
  [[nodiscard]] const Shape& ImageShape() const { return chw_; }

  /// Ground-truth class of image `i`.
  [[nodiscard]] std::int64_t LabelAt(std::int64_t i) const;

  /// Image `i` as a CHW tensor.
  [[nodiscard]] Tensor ImageAt(std::int64_t i) const;

  /// Images [start, start+count) stacked into an NCHW batch.
  [[nodiscard]] Tensor Batch(std::int64_t start, std::int64_t count) const;

  /// Labels of the same slice.
  [[nodiscard]] std::vector<std::int64_t> BatchLabels(std::int64_t start,
                                                      std::int64_t count) const;

 private:
  struct Component {
    float fx, fy, phase, amplitude;
    std::int64_t channel;
  };

  void FillImage(std::int64_t i, std::span<float> out) const;

  Shape chw_;
  std::int64_t num_classes_;
  std::int64_t size_;
  std::uint64_t seed_;
  float noise_stddev_;
  std::vector<std::vector<Component>> class_signatures_;
};

}  // namespace ccperf::data
