#include "data/synthetic_dataset.h"

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/rng.h"

namespace ccperf::data {

SyntheticImageDataset::SyntheticImageDataset(Shape chw,
                                             std::int64_t num_classes,
                                             std::int64_t size,
                                             std::uint64_t seed,
                                             float noise_stddev)
    : chw_(std::move(chw)),
      num_classes_(num_classes),
      size_(size),
      seed_(seed),
      noise_stddev_(noise_stddev) {
  CCPERF_CHECK(chw_.Rank() == 3, "image shape must be CHW");
  CCPERF_CHECK(num_classes_ >= 2, "need at least two classes");
  CCPERF_CHECK(size_ >= 1, "dataset size must be positive");
  CCPERF_CHECK(noise_stddev_ >= 0.0f, "negative noise");

  // Deterministic per-class signatures: 4 sinusoid components per class.
  Rng rng(seed_ ^ 0xa5a5a5a5a5a5a5a5ULL);
  class_signatures_.resize(static_cast<std::size_t>(num_classes_));
  const auto channels = chw_.Dim(0);
  for (auto& components : class_signatures_) {
    components.resize(4);
    for (auto& comp : components) {
      comp.fx = rng.NextFloat(0.5f, 4.0f);
      comp.fy = rng.NextFloat(0.5f, 4.0f);
      comp.phase = rng.NextFloat(0.0f, 2.0f * std::numbers::pi_v<float>);
      comp.amplitude = rng.NextFloat(0.5f, 1.5f);
      comp.channel = static_cast<std::int64_t>(rng.NextIndex(
          static_cast<std::uint64_t>(channels)));
    }
  }
}

std::int64_t SyntheticImageDataset::LabelAt(std::int64_t i) const {
  CCPERF_CHECK(i >= 0 && i < size_, "image index out of range");
  std::uint64_t h = seed_ ^ (0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(i));
  return static_cast<std::int64_t>(SplitMix64(h) %
                                   static_cast<std::uint64_t>(num_classes_));
}

void SyntheticImageDataset::FillImage(std::int64_t i,
                                      std::span<float> out) const {
  const std::int64_t c_n = chw_.Dim(0);
  const std::int64_t h_n = chw_.Dim(1);
  const std::int64_t w_n = chw_.Dim(2);
  CCPERF_CHECK(static_cast<std::int64_t>(out.size()) == c_n * h_n * w_n,
               "image buffer size mismatch");

  const std::int64_t label = LabelAt(i);
  const auto& components = class_signatures_[static_cast<std::size_t>(label)];

  // Signature.
  std::fill(out.begin(), out.end(), 0.0f);
  for (const auto& comp : components) {
    float* plane = out.data() + comp.channel * h_n * w_n;
    for (std::int64_t y = 0; y < h_n; ++y) {
      const float fy = comp.fy * static_cast<float>(y) /
                       static_cast<float>(h_n) * 2.0f *
                       std::numbers::pi_v<float>;
      for (std::int64_t x = 0; x < w_n; ++x) {
        const float fx = comp.fx * static_cast<float>(x) /
                         static_cast<float>(w_n) * 2.0f *
                         std::numbers::pi_v<float>;
        plane[y * w_n + x] +=
            comp.amplitude * std::sin(fx + fy + comp.phase);
      }
    }
  }

  // Per-image noise.
  if (noise_stddev_ > 0.0f) {
    Rng rng(seed_ ^ (0xd6e8feb86659fd93ULL * (static_cast<std::uint64_t>(i) + 1)));
    for (float& v : out) {
      v += static_cast<float>(rng.NextGaussian(0.0, noise_stddev_));
    }
  }
}

Tensor SyntheticImageDataset::ImageAt(std::int64_t i) const {
  Tensor img(chw_);
  FillImage(i, img.Data());
  return img;
}

Tensor SyntheticImageDataset::Batch(std::int64_t start,
                                    std::int64_t count) const {
  CCPERF_CHECK(count >= 1, "batch count must be positive");
  CCPERF_CHECK(start >= 0 && start + count <= size_, "batch out of range");
  Tensor batch(Shape{count, chw_.Dim(0), chw_.Dim(1), chw_.Dim(2)});
  const std::int64_t stride = chw_.NumElements();
  auto data = batch.Data();
  for (std::int64_t k = 0; k < count; ++k) {
    FillImage(start + k,
              data.subspan(static_cast<std::size_t>(k * stride),
                           static_cast<std::size_t>(stride)));
  }
  return batch;
}

std::vector<std::int64_t> SyntheticImageDataset::BatchLabels(
    std::int64_t start, std::int64_t count) const {
  CCPERF_CHECK(count >= 1 && start >= 0 && start + count <= size_,
               "label slice out of range");
  std::vector<std::int64_t> labels(static_cast<std::size_t>(count));
  for (std::int64_t k = 0; k < count; ++k) {
    labels[static_cast<std::size_t>(k)] = LabelAt(start + k);
  }
  return labels;
}

}  // namespace ccperf::data
