// Internal entry points of the vectorized sparse kernel TU.
//
// sparse_kernels.cpp is the sparse counterpart of gemm.cpp: it is the only
// other TU compiled with CCPERF_KERNEL_FLAGS and packs the dense operand B
// into the same ISA-sized column panels (kernel_tile.h) before streaming
// the sparse rows through register accumulators. These functions are an
// implementation detail of CsrMatrix/BsrMatrix::MultiplyDense; call those
// instead. Raw pointers (not spans) keep the hot signatures trivial — the
// public wrappers have already validated every extent.
#pragma once

#include <cstdint>

namespace ccperf::detail {

/// C[rows, n] = CSR(rows, cols) * B[cols, n], C overwritten. Parallel over
/// rows; every C element is accumulated in ascending-column order by
/// exactly one task, so the result is bitwise pool-size independent.
void SpmmCsr(std::int64_t rows, std::int64_t cols, std::int64_t n,
             const std::int64_t* row_ptr, const std::int32_t* col_idx,
             const float* values, const float* b, float* c);

/// C[rows, n] = BSR(rows, cols; 4x4 blocks) * B[cols, n], C overwritten.
/// `block_rows` = ceil(rows / 4); `col_idx` holds block-column indices and
/// `values` kBlockSize floats per stored block. Same determinism contract
/// as SpmmCsr.
void SpmmBsr(std::int64_t rows, std::int64_t cols, std::int64_t n,
             std::int64_t block_rows, const std::int64_t* row_ptr,
             const std::int32_t* col_idx, const float* values, const float* b,
             float* c);

}  // namespace ccperf::detail
