// Density -> kernel dispatch policy shared by every sparse call site.
//
// One measured policy replaces the two duplicated kSparseThreshold constants
// that used to live in conv_layer.h / fc_layer.h. The crossover densities
// below are calibrated against the packed dense GEMM on the conv2 shape
// (256 x 1200 weights x 729 pixels) by bench_ablation_sparse_vs_dense; the
// sweep is checked into bench_results/sparse_crossover.csv and can be
// regenerated with scripts/calibrate_sparse_threshold.sh. Re-run the
// calibration whenever either kernel family changes materially.
#pragma once

namespace ccperf {

/// Which multiply engine a weight matrix should execute on.
enum class SparseKernel {
  kDense,  // blocked+packed GEMM (gemm.cpp)
  kCsr,    // row-panel CSR x packed-B SpMM (sparse_kernels.cpp)
  kBsr,    // 4x4 block-CSR register-tiled SpMM (sparse_kernels.cpp)
};

/// Weight density below which the blocked CSR kernel beats the packed dense
/// GEMM. Measured crossovers on the conv2 shape (single AVX-512 core):
/// element-sparse 0.20, filter-sparse 0.21, block-sparse 0.17 — the packed
/// dense GEMM runs near machine peak, so CSR's ~3 cycles/nnz only pays off
/// once four in five weights are gone.
inline constexpr double kCsrCrossoverDensity = 0.20;

/// Stored-block density (density / fill = fraction of 4x4 blocks kept)
/// below which the BSR kernel beats the packed dense GEMM. BSR's cost
/// scales with stored blocks, not nonzeros, so the crossover is expressed
/// in block terms: measured 0.58 on block-aligned sparsity (fill = 1.0),
/// held back to 0.55. BSR reuses each packed-B row across its 4-row block
/// (1:4 load:FMA), which is why it crosses over at ~2.5x the CSR density.
inline constexpr double kBsrCrossoverDensity = 0.55;

/// Minimum fraction of nonzeros inside stored 4x4 blocks for BSR to beat
/// CSR. At full fill BSR spends ~0.5x CSR's time per stored value
/// (measured 5.6 ms vs 11.0 ms on the dense conv2 shape), so the break-even
/// fill is ~0.5: aligned-group filter pruning keeps fill at 1.0, while
/// element-magnitude pruning drives fill toward the raw density and
/// per-filter pruning bottoms out near 1/kBlockRows, where the padded
/// multiplies erase BSR's advantage.
inline constexpr double kBsrMinBlockFill = 0.5;

[[nodiscard]] constexpr const char* ToString(SparseKernel k) {
  switch (k) {
    case SparseKernel::kDense: return "dense";
    case SparseKernel::kCsr: return "csr";
    case SparseKernel::kBsr: return "bsr";
  }
  return "?";
}

/// Pick the fastest kernel for a weight matrix with the given nonzero
/// density and BSR block fill (nnz / stored-block capacity; measure with
/// BsrMatrix::DenseBlockFill before building anything). BSR work is
/// proportional to stored blocks, so its crossover test uses the
/// stored-block density (density / fill); fill itself gates BSR vs CSR.
[[nodiscard]] constexpr SparseKernel ChooseSparseKernel(double density,
                                                        double bsr_fill) {
  const double block_density = bsr_fill > 0.0 ? density / bsr_fill : 1.0;
  if (bsr_fill >= kBsrMinBlockFill && block_density < kBsrCrossoverDensity) {
    return SparseKernel::kBsr;
  }
  if (density < kCsrCrossoverDensity) return SparseKernel::kCsr;
  return SparseKernel::kDense;
}

/// Analytic time factor used by the cloud variant-perf model: the dispatch
/// plateau means a layer's prunable time only starts shrinking once its
/// effective density drops below the sparse crossover; above it the dense
/// kernel runs and pruning buys nothing. The serving stack prunes filters
/// in block-aligned groups (fill ~ 1.0), so the relevant crossover is
/// BSR's. Below it the factor is the density itself — per-nnz kernel
/// efficiency is already folded into each profile's calibrated
/// prunable_fraction.
[[nodiscard]] constexpr double AnalyticSparseTimeFactor(double density) {
  return density < kBsrCrossoverDensity ? density : 1.0;
}

/// Which packed-weight format a weighted layer executes on: the float
/// formats above, or the int8 quantized path (tensor/quant.h). Quantized
/// execution is opt-in per network (Layer::SetInt8Execution) because it
/// trades a bounded accuracy loss for speed — the second accuracy knob of
/// the cost-accuracy frontier, next to pruning.
enum class KernelFormat {
  kFloat,  // blocked+packed float GEMM (gemm.cpp)
  kCsr,    // row-panel CSR x packed-B SpMM (sparse_kernels.cpp)
  kBsr,    // 4x4 block-CSR register-tiled SpMM (sparse_kernels.cpp)
  kInt8,   // per-channel int8 GEMM + fused dequant epilogue (quant.cpp)
};

[[nodiscard]] constexpr const char* ToString(KernelFormat f) {
  switch (f) {
    case KernelFormat::kFloat: return "float";
    case KernelFormat::kCsr: return "csr";
    case KernelFormat::kBsr: return "bsr";
    case KernelFormat::kInt8: return "int8";
  }
  return "?";
}

/// Seconds-per-image factor of the int8 path relative to the packed float
/// GEMM on dense-dispatched layers. Measured on the Table-1 conv shapes by
/// bench_ext_gemm_speedup (bench_results/ext_gemm_speedup.csv): the VNNI
/// byte-dot kernel sustains 2-2.8x the float GFLOP/s with the activation
/// scale scan and quantize-pack folded in, so the model holds a
/// conservative 0.45.
inline constexpr double kInt8TimeFactor = 0.45;

/// Three-way dispatch: the sparse crossovers still rule when pruning has
/// made the sparse kernel genuinely cheaper than quantized-dense (analytic
/// sparse factor = density beats kInt8TimeFactor); otherwise an
/// int8-enabled layer runs quantized. Mirrors ChooseSparseKernel when
/// int8 is off.
[[nodiscard]] constexpr KernelFormat ChooseKernelFormat(double density,
                                                        double bsr_fill,
                                                        bool int8_enabled) {
  const SparseKernel sparse = ChooseSparseKernel(density, bsr_fill);
  if (int8_enabled &&
      (sparse == SparseKernel::kDense || density >= kInt8TimeFactor)) {
    return KernelFormat::kInt8;
  }
  switch (sparse) {
    case SparseKernel::kDense: return KernelFormat::kFloat;
    case SparseKernel::kCsr: return KernelFormat::kCsr;
    case SparseKernel::kBsr: return KernelFormat::kBsr;
  }
  return KernelFormat::kFloat;
}

/// Sparse kernel a format maps onto for float execution (int8 runs its own
/// dense-shaped kernel).
[[nodiscard]] constexpr SparseKernel ToSparseKernel(KernelFormat f) {
  switch (f) {
    case KernelFormat::kCsr: return SparseKernel::kCsr;
    case KernelFormat::kBsr: return SparseKernel::kBsr;
    case KernelFormat::kFloat:
    case KernelFormat::kInt8: return SparseKernel::kDense;
  }
  return SparseKernel::kDense;
}

/// AnalyticSparseTimeFactor extended with the int8 knob: an int8-enabled
/// layer's time factor is the better of the sparse path and the quantized
/// dense path — exactly the ChooseKernelFormat policy above.
[[nodiscard]] constexpr double AnalyticQuantTimeFactor(double density,
                                                       bool int8_enabled) {
  const double sparse = AnalyticSparseTimeFactor(density);
  if (!int8_enabled) return sparse;
  return sparse < kInt8TimeFactor ? sparse : kInt8TimeFactor;
}

}  // namespace ccperf
