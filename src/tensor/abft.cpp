#include "tensor/abft.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/threading.h"

namespace ccperf {

namespace {

constexpr double kEps = 1.19209290e-7;  // float machine epsilon / 2 * 2

}  // namespace

AbftPackedA AbftPackA(std::int64_t m, std::int64_t k,
                      std::span<const float> a) {
  CCPERF_CHECK(m >= 0 && k >= 0, "negative GEMM extent");
  CCPERF_CHECK(static_cast<std::int64_t>(a.size()) == m * k, "A size mismatch");
  AbftPackedA packed;
  packed.m_ = m;
  packed.k_ = k;
  if (m == 0) return packed;
  // Augmented matrix [A; colsum(A)]: the checksum row is accumulated in
  // double (one rounding to float at the end), so its own error does not
  // dominate the residual the tolerance must cover.
  std::vector<float> aug(static_cast<std::size_t>((m + 1) * k), 0.0f);
  std::copy(a.begin(), a.end(), aug.begin());
  packed.col_w2_.assign(static_cast<std::size_t>(k), 0.0);
  for (std::int64_t kk = 0; kk < k; ++kk) {
    double colsum = 0.0;
    double colsq = 0.0;
    for (std::int64_t i = 0; i < m; ++i) {
      const double v = a[static_cast<std::size_t>(i * k + kk)];
      colsum += v;
      colsq += v * v;
    }
    aug[static_cast<std::size_t>(m * k + kk)] = static_cast<float>(colsum);
    packed.col_w2_[static_cast<std::size_t>(kk)] = colsq + colsum * colsum;
  }
  packed.aug_ = PackA(m + 1, k, aug);
  return packed;
}

void GemmAbftCompute(const AbftPackedA& a, std::int64_t n,
                     std::span<const float> b, std::span<float> c,
                     std::span<float> checksum_row) {
  const std::int64_t m = a.m_;
  const std::int64_t k = a.k_;
  CCPERF_CHECK(n >= 0, "negative GEMM extent");
  CCPERF_CHECK(static_cast<std::int64_t>(b.size()) == k * n, "B size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(c.size()) == m * n, "C size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(checksum_row.size()) == n,
               "checksum row size mismatch");
  if (m == 0) return;
  if (n == 0) return;
  // One kernel call over the augmented pack; rows of C are accumulated
  // independently, so rows 0..m-1 are bitwise equal to GemmPacked of the
  // unaugmented matrix and row m is the checksum row. The scratch is
  // thread_local and reused across calls: a fresh multi-MB vector per call
  // costs more in page faults than the checksum row costs in flops.
  static thread_local std::vector<float> caug;
  const auto needed = static_cast<std::size_t>((m + 1) * n);
  if (caug.size() < needed) caug.resize(needed);
  GemmPacked(a.aug_, n, b, std::span<float>(caug.data(), needed));
  std::copy(caug.begin(), caug.begin() + static_cast<std::ptrdiff_t>(m * n),
            c.begin());
  std::copy(caug.begin() + static_cast<std::ptrdiff_t>(m * n),
            caug.begin() + static_cast<std::ptrdiff_t>((m + 1) * n),
            checksum_row.begin());
}

AbftCheck AbftVerify(const AbftPackedA& a, std::int64_t n,
                     std::span<const float> b, std::span<const float> c,
                     std::span<const float> checksum_row) {
  const std::int64_t m = a.m_;
  const std::int64_t k = a.k_;
  CCPERF_CHECK(static_cast<std::int64_t>(b.size()) == k * n, "B size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(c.size()) == m * n, "C size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(checksum_row.size()) == n,
               "checksum row size mismatch");
  AbftCheck check;
  if (m == 0 || n == 0) return check;

  // Per-column residual and tolerance, each column in a fixed serial order
  // inside its chunk — bitwise deterministic regardless of pool size, and
  // the final scan below is serial. Scratch reused across calls (see
  // GemmAbftCompute).
  static thread_local std::vector<double> residual;
  static thread_local std::vector<double> tolerance;
  if (residual.size() < static_cast<std::size_t>(n)) {
    residual.resize(static_cast<std::size_t>(n));
    tolerance.resize(static_cast<std::size_t>(n));
  }
  const float* cp = c.data();
  const float* bp = b.data();
  const float* chk = checksum_row.data();
  const double* w2 = a.col_w2_.data();
  double* res = residual.data();
  double* tol = tolerance.data();
  const double scale = kAbftSafety * kEps *
                       std::sqrt(static_cast<double>(k) + 16.0);
  // Rows outer, chunk columns inner: every C/B load is contiguous (the
  // column-at-a-time order strides by n and thrashes the cache), while each
  // column j still accumulates in ascending i / ascending kk order — the
  // residuals are bitwise identical to the naive per-column loop.
  ParallelForChunks(
      0, static_cast<std::size_t>(n),
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t j = lo; j < hi; ++j) {
          res[j] = 0.0;
          tol[j] = 0.0;
        }
        for (std::int64_t i = 0; i < m; ++i) {
          const float* row = cp + static_cast<std::size_t>(i * n);
          for (std::size_t j = lo; j < hi; ++j) {
            res[j] += static_cast<double>(row[j]);
          }
        }
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const float* row = bp + static_cast<std::size_t>(kk * n);
          const double w = w2[kk];
          for (std::size_t j = lo; j < hi; ++j) {
            const double bv = row[j];
            tol[j] += w * bv * bv;
          }
        }
        for (std::size_t j = lo; j < hi; ++j) {
          res[j] = std::fabs(res[j] - static_cast<double>(chk[j]));
          tol[j] = scale * std::sqrt(tol[j]) + kAbftFloor;
        }
      },
      64);
  for (std::int64_t j = 0; j < n; ++j) {
    const double r = residual[static_cast<std::size_t>(j)];
    const double t = tolerance[static_cast<std::size_t>(j)];
    // NaN residual (non-finite inputs) fails the comparison: reported bad.
    const bool good = r <= t;
    if (!good) {
      check.ok = false;
      ++check.bad_columns;
      if (check.first_bad_column < 0) check.first_bad_column = j;
    }
    const double ratio =
        t > 0.0 ? r / t : std::numeric_limits<double>::infinity();
    if (!(ratio <= check.max_ratio)) check.max_ratio = ratio;
  }
  return check;
}

AbftCheck GemmAbft(const AbftPackedA& a, std::int64_t n,
                   std::span<const float> b, std::span<float> c) {
  static thread_local std::vector<float> checksum_row;
  if (checksum_row.size() < static_cast<std::size_t>(n)) {
    checksum_row.resize(static_cast<std::size_t>(n));
  }
  const std::span<float> chk(checksum_row.data(), static_cast<std::size_t>(n));
  GemmAbftCompute(a, n, b, c, chk);
  return AbftVerify(a, n, b, c, chk);
}

AbftCheck GemmAbft(std::int64_t m, std::int64_t n, std::int64_t k,
                   std::span<const float> a, std::span<const float> b,
                   std::span<float> c) {
  return GemmAbft(AbftPackA(m, k, a), n, b, c);
}

}  // namespace ccperf
