// Dense row-major float32 tensor with value semantics.
#pragma once

#include <span>
#include <vector>

#include "tensor/shape.h"

namespace ccperf {

class Rng;

/// Owning dense float tensor. Copy is deep; move is cheap. Layout is
/// row-major in the order of the shape's axes (NCHW for activations).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);
  Tensor(Shape shape, std::vector<float> data);

  [[nodiscard]] const Shape& GetShape() const { return shape_; }
  [[nodiscard]] std::int64_t NumElements() const { return shape_.NumElements(); }

  [[nodiscard]] std::span<float> Data() { return data_; }
  [[nodiscard]] std::span<const float> Data() const { return data_; }

  /// Flat element access with bounds check.
  [[nodiscard]] float At(std::int64_t i) const;
  void Set(std::int64_t i, float v);

  /// 4-D convenience accessor (n, c, h, w) for NCHW tensors.
  [[nodiscard]] float At4(std::int64_t n, std::int64_t c, std::int64_t h,
                          std::int64_t w) const;
  void Set4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w,
            float v);

  /// Reinterpret with a new shape of identical element count.
  [[nodiscard]] Tensor Reshaped(Shape new_shape) const;

  /// Fill with iid N(mean, stddev) values from `rng`.
  void FillGaussian(Rng& rng, float mean, float stddev);

  /// Fraction of exactly-zero elements in [0, 1].
  [[nodiscard]] double ZeroFraction() const;

  /// Sum of |x| over all elements.
  [[nodiscard]] double L1Norm() const;

 private:
  [[nodiscard]] std::int64_t Offset4(std::int64_t n, std::int64_t c,
                                     std::int64_t h, std::int64_t w) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace ccperf
