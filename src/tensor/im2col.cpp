#include "tensor/im2col.h"

#include "common/check.h"

namespace ccperf {

void Im2Col(const ConvGeometry& g, std::span<const float> image,
            std::span<float> columns) {
  CCPERF_CHECK(g.stride >= 1 && g.pad >= 0, "invalid conv geometry");
  CCPERF_CHECK(static_cast<std::int64_t>(image.size()) ==
                   g.in_channels * g.in_h * g.in_w,
               "image size mismatch");
  const std::int64_t out_h = g.OutH();
  const std::int64_t out_w = g.OutW();
  CCPERF_CHECK(out_h > 0 && out_w > 0, "conv output collapses to zero");
  CCPERF_CHECK(static_cast<std::int64_t>(columns.size()) ==
                   g.PatchSize() * g.OutPixels(),
               "columns size mismatch");

  float* col = columns.data();
  const float* img = image.data();
  const std::int64_t out_pixels = out_h * out_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    const float* plane = img + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* dst = col + row * out_pixels;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          const std::int64_t ih = oh * g.stride - g.pad + kh;
          if (ih < 0 || ih >= g.in_h) {
            for (std::int64_t ow = 0; ow < out_w; ++ow) dst[oh * out_w + ow] = 0.0f;
            continue;
          }
          const float* src_row = plane + ih * g.in_w;
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            const std::int64_t iw = ow * g.stride - g.pad + kw;
            dst[oh * out_w + ow] =
                (iw >= 0 && iw < g.in_w) ? src_row[iw] : 0.0f;
          }
        }
      }
    }
  }
}

void Col2Im(const ConvGeometry& g, std::span<const float> columns,
            std::span<float> image) {
  CCPERF_CHECK(g.stride >= 1 && g.pad >= 0, "invalid conv geometry");
  CCPERF_CHECK(static_cast<std::int64_t>(image.size()) ==
                   g.in_channels * g.in_h * g.in_w,
               "image size mismatch");
  const std::int64_t out_h = g.OutH();
  const std::int64_t out_w = g.OutW();
  CCPERF_CHECK(out_h > 0 && out_w > 0, "conv output collapses to zero");
  CCPERF_CHECK(static_cast<std::int64_t>(columns.size()) ==
                   g.PatchSize() * g.OutPixels(),
               "columns size mismatch");

  std::fill(image.begin(), image.end(), 0.0f);
  const float* col = columns.data();
  float* img = image.data();
  const std::int64_t out_pixels = out_h * out_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    float* plane = img + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = col + row * out_pixels;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          const std::int64_t ih = oh * g.stride - g.pad + kh;
          if (ih < 0 || ih >= g.in_h) continue;
          float* dst_row = plane + ih * g.in_w;
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            const std::int64_t iw = ow * g.stride - g.pad + kw;
            if (iw >= 0 && iw < g.in_w) dst_row[iw] += src[oh * out_w + ow];
          }
        }
      }
    }
  }
}

}  // namespace ccperf
