#include "tensor/tensor.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace ccperf {

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.NumElements()), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  CCPERF_CHECK(static_cast<std::int64_t>(data_.size()) == shape_.NumElements(),
               "data size ", data_.size(), " != shape elements ",
               shape_.NumElements());
}

float Tensor::At(std::int64_t i) const {
  CCPERF_CHECK(i >= 0 && i < NumElements(), "flat index out of range");
  return data_[static_cast<std::size_t>(i)];
}

void Tensor::Set(std::int64_t i, float v) {
  CCPERF_CHECK(i >= 0 && i < NumElements(), "flat index out of range");
  data_[static_cast<std::size_t>(i)] = v;
}

std::int64_t Tensor::Offset4(std::int64_t n, std::int64_t c, std::int64_t h,
                             std::int64_t w) const {
  CCPERF_CHECK(shape_.Rank() == 4, "At4 requires rank-4, got ",
               shape_.ToString());
  CCPERF_CHECK(n >= 0 && n < shape_.Dim(0) && c >= 0 && c < shape_.Dim(1) &&
                   h >= 0 && h < shape_.Dim(2) && w >= 0 && w < shape_.Dim(3),
               "index (", n, ",", c, ",", h, ",", w, ") out of range for ",
               shape_.ToString());
  return ((n * shape_.Dim(1) + c) * shape_.Dim(2) + h) * shape_.Dim(3) + w;
}

float Tensor::At4(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) const {
  return data_[static_cast<std::size_t>(Offset4(n, c, h, w))];
}

void Tensor::Set4(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w, float v) {
  data_[static_cast<std::size_t>(Offset4(n, c, h, w))] = v;
}

Tensor Tensor::Reshaped(Shape new_shape) const {
  CCPERF_CHECK(new_shape.NumElements() == NumElements(),
               "reshape element count mismatch: ", shape_.ToString(), " -> ",
               new_shape.ToString());
  return Tensor(std::move(new_shape), data_);
}

void Tensor::FillGaussian(Rng& rng, float mean, float stddev) {
  for (auto& v : data_) {
    v = static_cast<float>(rng.NextGaussian(mean, stddev));
  }
}

double Tensor::ZeroFraction() const {
  if (data_.empty()) return 0.0;
  std::size_t zeros = 0;
  for (float v : data_) {
    if (v == 0.0f) ++zeros;
  }
  return static_cast<double>(zeros) / static_cast<double>(data_.size());
}

double Tensor::L1Norm() const {
  double sum = 0.0;
  for (float v : data_) sum += std::fabs(static_cast<double>(v));
  return sum;
}

}  // namespace ccperf
