// Sparse weight formats (CSR and 4x4 block-CSR) and sparse-dense multiply.
//
// Pruned convolution/FC weights are stored sparsely so that inference cost
// scales with the number of surviving parameters — the mechanism behind the
// paper's time-vs-prune-ratio curves. Both formats multiply through the
// vectorized row-panel kernels in sparse_kernels.cpp, which pack the dense
// operand into the same ISA-sized column panels as the blocked GEMM; the
// format/dense choice per layer is made by sparse_dispatch.h.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace ccperf {

/// Row-major CSR matrix of float32 values.
///
/// FromDense drops entries that compare equal to 0.0f. Like the dense
/// reference kernel's zero skip, this is value-preserving for finite
/// operands (-0.0f contributions cannot move a sum, and denormals are
/// kept), but a dropped zero times a non-finite B entry yields 0 instead
/// of NaN/Inf — the semantics pinned down by tensor_sparse_test.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from a dense row-major matrix, dropping exact zeros.
  static CsrMatrix FromDense(std::int64_t rows, std::int64_t cols,
                             std::span<const float> dense);

  /// Build from a rank-2 tensor.
  static CsrMatrix FromTensor(const Tensor& t);

  [[nodiscard]] std::int64_t Rows() const { return rows_; }
  [[nodiscard]] std::int64_t Cols() const { return cols_; }
  [[nodiscard]] std::int64_t Nnz() const {
    return static_cast<std::int64_t>(values_.size());
  }

  /// Fraction of zero entries in [0, 1].
  [[nodiscard]] double Sparsity() const;

  /// Reconstruct the dense row-major matrix (tests / round-tripping).
  [[nodiscard]] std::vector<float> ToDense() const;

  /// C[rows, n] = this[rows, cols] * B[cols, n]; C overwritten.
  /// Vectorized row-panel kernel over packed B; parallelized over rows,
  /// each C element accumulated in fixed ascending-column order by exactly
  /// one task (bitwise-deterministic, pool-size independent).
  void MultiplyDense(std::span<const float> b, std::int64_t n,
                     std::span<float> c) const;

  /// The pre-blocking scalar row-loop kernel, kept as the portable fallback
  /// and as the differential-test oracle for the vectorized path.
  void MultiplyDenseScalar(std::span<const float> b, std::int64_t n,
                           std::span<float> c) const;

  /// y[rows] = this * x[cols].
  void MultiplyVector(std::span<const float> x, std::span<float> y) const;

  [[nodiscard]] std::span<const std::int64_t> RowPtr() const { return row_ptr_; }
  [[nodiscard]] std::span<const std::int32_t> ColIdx() const { return col_idx_; }
  [[nodiscard]] std::span<const float> Values() const { return values_; }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<std::int64_t> row_ptr_;  // size rows_+1
  std::vector<std::int32_t> col_idx_;  // size nnz
  std::vector<float> values_;          // size nnz
};

/// Block compressed sparse row matrix with fixed kBlockRows x kBlockCols
/// micro-blocks, sized so the multiply kernel can hold a block-row x
/// panel-width register tile and reuse each packed-B row across the block's
/// rows (the same trick as the dense microkernel). A block is stored when
/// any of its entries is nonzero; interior zeros are stored explicitly, so
/// BSR only pays off when blocks are well filled — whole-filter pruning
/// (filter_pruner) leaves surviving rows dense and produces exactly that
/// structure. Fill() reports the ratio the dispatch policy thresholds on.
class BsrMatrix {
 public:
  static constexpr std::int64_t kBlockRows = 4;
  static constexpr std::int64_t kBlockCols = 4;
  static constexpr std::int64_t kBlockSize = kBlockRows * kBlockCols;

  BsrMatrix() = default;

  /// Build from a dense row-major matrix. Tail blocks are zero-padded.
  static BsrMatrix FromDense(std::int64_t rows, std::int64_t cols,
                             std::span<const float> dense);

  /// Build from a rank-2 tensor.
  static BsrMatrix FromTensor(const Tensor& t);

  /// Block fill a dense matrix would have as BSR (nnz / stored-block
  /// capacity), without building anything. 1.0 for an all-zero matrix so a
  /// fully pruned layer still dispatches to the cheapest sparse kernel.
  static double DenseBlockFill(std::int64_t rows, std::int64_t cols,
                               std::span<const float> dense);

  [[nodiscard]] std::int64_t Rows() const { return rows_; }
  [[nodiscard]] std::int64_t Cols() const { return cols_; }
  /// Count of nonzero entries (not stored entries).
  [[nodiscard]] std::int64_t Nnz() const { return nnz_; }
  [[nodiscard]] std::int64_t StoredBlocks() const {
    return static_cast<std::int64_t>(col_idx_.size());
  }
  /// nnz / (StoredBlocks * kBlockSize); 1.0 when no blocks are stored.
  [[nodiscard]] double Fill() const;
  /// Fraction of zero entries in [0, 1].
  [[nodiscard]] double Sparsity() const;

  /// Reconstruct the dense row-major matrix (tests / round-tripping).
  [[nodiscard]] std::vector<float> ToDense() const;

  /// C[rows, n] = this[rows, cols] * B[cols, n]; C overwritten. Same
  /// determinism contract as CsrMatrix::MultiplyDense.
  void MultiplyDense(std::span<const float> b, std::int64_t n,
                     std::span<float> c) const;

  /// y[rows] = this * x[cols] (scalar; batch-1 latency path).
  void MultiplyVector(std::span<const float> x, std::span<float> y) const;

  [[nodiscard]] std::span<const std::int64_t> RowPtr() const { return row_ptr_; }
  [[nodiscard]] std::span<const std::int32_t> ColIdx() const { return col_idx_; }
  [[nodiscard]] std::span<const float> Values() const { return values_; }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t nnz_ = 0;
  std::vector<std::int64_t> row_ptr_;  // size block_rows+1, in blocks
  std::vector<std::int32_t> col_idx_;  // block-column index per stored block
  std::vector<float> values_;          // kBlockSize floats per stored block,
                                       // row-major within the block
};

}  // namespace ccperf
