// Compressed sparse row (CSR) matrix and sparse-dense multiply.
//
// Pruned convolution/FC weights are stored as CSR so that inference cost
// scales with the number of surviving parameters — the mechanism behind the
// paper's time-vs-prune-ratio curves.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace ccperf {

/// Row-major CSR matrix of float32 values.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from a dense row-major matrix, dropping exact zeros.
  static CsrMatrix FromDense(std::int64_t rows, std::int64_t cols,
                             std::span<const float> dense);

  /// Build from a rank-2 tensor.
  static CsrMatrix FromTensor(const Tensor& t);

  [[nodiscard]] std::int64_t Rows() const { return rows_; }
  [[nodiscard]] std::int64_t Cols() const { return cols_; }
  [[nodiscard]] std::int64_t Nnz() const {
    return static_cast<std::int64_t>(values_.size());
  }

  /// Fraction of zero entries in [0, 1].
  [[nodiscard]] double Sparsity() const;

  /// Reconstruct the dense row-major matrix (tests / round-tripping).
  [[nodiscard]] std::vector<float> ToDense() const;

  /// C[rows, n] = this[rows, cols] * B[cols, n]; C overwritten.
  /// Parallelized over row panels.
  void MultiplyDense(std::span<const float> b, std::int64_t n,
                     std::span<float> c) const;

  /// y[rows] = this * x[cols].
  void MultiplyVector(std::span<const float> x, std::span<float> y) const;

  [[nodiscard]] std::span<const std::int64_t> RowPtr() const { return row_ptr_; }
  [[nodiscard]] std::span<const std::int32_t> ColIdx() const { return col_idx_; }
  [[nodiscard]] std::span<const float> Values() const { return values_; }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<std::int64_t> row_ptr_;  // size rows_+1
  std::vector<std::int32_t> col_idx_;  // size nnz
  std::vector<float> values_;          // size nnz
};

}  // namespace ccperf
