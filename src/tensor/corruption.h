// Seeded silent-data-corruption injection for the kernel layer.
//
// CorruptionInjector flips one pseudo-random bit in one pseudo-random
// element of a packed weight matrix or an output buffer — the fault model
// of the SDC subsystem (DESIGN.md §14): a particle strike or a failing DIMM
// lane poisons a value with no error signal. Everything is driven by
// common/rng.h, so every injection campaign replays exactly from its seed.
//
// Default bit range [20, 31] — sign, exponent, and the high mantissa bits.
// Flips below bit 20 perturb a float by less than ~2^-3 of its magnitude,
// which for large reductions sits below the float rounding floor the ABFT
// tolerance must admit (tensor/abft.h); such flips are undetectable by any
// checksum scheme that tolerates rounding and are also the flips that do
// not move model accuracy. The int8 paths detect any flipped bit exactly,
// so the range only matters for float targets.
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.h"
#include "tensor/abft.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"

namespace ccperf {

/// Where an injection landed — enough to reproduce or report it.
struct BitFlip {
  std::int64_t row = 0;  // element row (or flat index for spans)
  std::int64_t col = 0;  // element column / K index (0 for spans)
  int bit = 0;           // flipped bit position
};

class CorruptionInjector {
 public:
  /// Bits are drawn uniformly from [bit_lo, bit_hi] (inclusive).
  explicit CorruptionInjector(std::uint64_t seed, int bit_lo = 20,
                              int bit_hi = 31);

  /// Flip one bit of one element of a row-major M x N float buffer.
  BitFlip CorruptOutput(std::span<float> c, std::int64_t m, std::int64_t n);

  /// Flip one bit of one float in a flat buffer (weights, activations).
  BitFlip CorruptFloats(std::span<float> data);

  /// Flip one bit of one valid packed element (never the zero padding, and
  /// never the checksum row of an ABFT pack).
  BitFlip CorruptWeights(PackedA& a);
  BitFlip CorruptWeights(AbftPackedA& a);

  /// Flip one bit (0..7, the int8 grid) of one valid quantized element.
  /// The stored row/column sums are intentionally left stale — corruption
  /// strikes after packing, which is exactly what GemmInt8Abft detects.
  BitFlip CorruptWeights(QuantizedPackedA& a);

 private:
  [[nodiscard]] int NextBit();

  Rng rng_;
  int bit_lo_;
  int bit_hi_;
};

}  // namespace ccperf
