// Algorithm-based fault tolerance (ABFT) for the dense GEMM path.
//
// Huang-Abraham column checksums adapted to the blocked kernel: AbftPackA
// appends one extra row to A holding its column sums (computed in double,
// rounded once to float) before packing, so the same GemmPacked call that
// produces C also produces a checksum row chk_j = sum_k colsum_k * b_kj.
// Verification compares the double-precision column sums of C against that
// row within a derived float tolerance; a silent single-element corruption
// of the packed weights or the output perturbs exactly the failing columns.
//
// Tolerance derivation. The residual r_j = |sum_i c_ij - chk_j| is pure
// float rounding noise on a clean run. Both sides accumulate ~(m + 2k)
// roundings whose realistic magnitude tracks the partial-product energy,
// not the (cancellation-prone) outputs, so the per-column noise proxy is
//   proxy_j^2 = sum_k (sum_i a_ik^2 + (sum_i a_ik)^2) * b_kj^2
// (the second term covers the checksum row itself, whose partials are
// colsum_k * b_kj — up to sqrt(m) larger when a column of A does not
// cancel). The tolerance is
//   tol_j = kAbftSafety * eps * sqrt(k + 16) * proxy_j + kAbftFloor,
// calibrated so ~200-shape random sweeps see zero false positives
// (tensor_abft_differential_test) while a bit flip in the sign/exponent/
// high-mantissa range of any output element lands orders of magnitude
// above it. Flips below the float rounding floor are undetectable in
// principle; CorruptionInjector (tensor/corruption.h) therefore defaults
// to the detectable bit range.
//
// Non-finite inputs make the residual NaN, which fails the `r <= tol`
// comparison: a NaN-poisoned multiply is reported as corrupt. That is the
// conservative serving-oriented semantic and is pinned by tests.
//
// The int8 twin (GemmInt8Abft, tensor/quant.h) verifies the exact int32
// accumulator image against stored quantized column sums — integer
// equality, no tolerance — and shares the AbftCheck report type.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/gemm.h"

namespace ccperf {

/// Tolerance constants (see the derivation above). Exposed so tests and the
/// bench can reason about the detection floor.
inline constexpr double kAbftSafety = 12.0;
inline constexpr double kAbftFloor = 1e-30;

/// Outcome of one checksum verification.
struct AbftCheck {
  /// True iff every column's residual is within tolerance.
  bool ok = true;
  /// Columns whose residual exceeded tolerance (0 when ok).
  std::int64_t bad_columns = 0;
  /// First failing column index, -1 when ok.
  std::int64_t first_bad_column = -1;
  /// max_j residual_j / tolerance_j — <= 1 on clean runs, typically far
  /// below; corruption drives it orders of magnitude above 1. For the int8
  /// path the residual is exact, so this is the max absolute integer
  /// residual instead (any nonzero value fails).
  double max_ratio = 0.0;
};

/// A[M,K] with its column-checksum row appended, packed for GemmPacked,
/// plus the per-column statistics the tolerance derivation needs. Build
/// once per weight matrix and reuse across GemmAbft calls (the ABFT twin
/// of the weight-stationary PackA caching).
class AbftPackedA {
 public:
  AbftPackedA() = default;

  [[nodiscard]] std::int64_t M() const { return m_; }
  [[nodiscard]] std::int64_t K() const { return k_; }
  [[nodiscard]] bool Empty() const { return m_ == 0 && k_ == 0; }

  /// The augmented (M+1) x K pack (row M is the checksum row). Exposed for
  /// size accounting; treat the layout as opaque.
  [[nodiscard]] const PackedA& Augmented() const { return aug_; }

 private:
  friend AbftPackedA AbftPackA(std::int64_t m, std::int64_t k,
                               std::span<const float> a);
  friend void GemmAbftCompute(const AbftPackedA& a, std::int64_t n,
                              std::span<const float> b, std::span<float> c,
                              std::span<float> checksum_row);
  friend AbftCheck AbftVerify(const AbftPackedA& a, std::int64_t n,
                              std::span<const float> b,
                              std::span<const float> c,
                              std::span<const float> checksum_row);
  friend class CorruptionInjector;

  std::int64_t m_ = 0;
  std::int64_t k_ = 0;
  PackedA aug_;                 // (m+1) x k augmented pack
  std::vector<double> col_w2_;  // [k]: sum_i a_ik^2 + (sum_i a_ik)^2
};

/// Build the checksummed pack of row-major A[M,K].
AbftPackedA AbftPackA(std::int64_t m, std::int64_t k, std::span<const float> a);

/// C[M,N] = A * B[K,N] plus the checksum row, no verification — the
/// kernel half of GemmAbft, split out so tests can corrupt C between
/// compute and verify. `checksum_row` must have N elements. Bitwise equal
/// to GemmPacked of the unaugmented matrix (each C row's accumulation is
/// independent of the extra row) and pool-size independent.
void GemmAbftCompute(const AbftPackedA& a, std::int64_t n,
                     std::span<const float> b, std::span<float> c,
                     std::span<float> checksum_row);

/// Verify a computed (C, checksum_row) pair column by column.
AbftCheck AbftVerify(const AbftPackedA& a, std::int64_t n,
                     std::span<const float> b, std::span<const float> c,
                     std::span<const float> checksum_row);

/// C[M,N] = A * B[K,N] with checksum verification: GemmAbftCompute then
/// AbftVerify. C is fully written even when verification fails (the caller
/// decides whether to re-execute or discard).
AbftCheck GemmAbft(const AbftPackedA& a, std::int64_t n,
                   std::span<const float> b, std::span<float> c);

/// Convenience: pack + multiply + verify in one call.
AbftCheck GemmAbft(std::int64_t m, std::int64_t n, std::int64_t k,
                   std::span<const float> a, std::span<const float> b,
                   std::span<float> c);

}  // namespace ccperf
