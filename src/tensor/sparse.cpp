#include "tensor/sparse.h"

#include <limits>

#include "common/check.h"
#include "common/threading.h"

namespace ccperf {

CsrMatrix CsrMatrix::FromDense(std::int64_t rows, std::int64_t cols,
                               std::span<const float> dense) {
  CCPERF_CHECK(rows >= 0 && cols >= 0, "negative CSR extent");
  CCPERF_CHECK(static_cast<std::int64_t>(dense.size()) == rows * cols,
               "dense size mismatch");
  CCPERF_CHECK(cols <= std::numeric_limits<std::int32_t>::max(),
               "column count exceeds int32 index range");
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.resize(static_cast<std::size_t>(rows) + 1, 0);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      const float v = dense[static_cast<std::size_t>(r * cols + c)];
      if (v != 0.0f) {
        m.col_idx_.push_back(static_cast<std::int32_t>(c));
        m.values_.push_back(v);
      }
    }
    m.row_ptr_[static_cast<std::size_t>(r) + 1] =
        static_cast<std::int64_t>(m.values_.size());
  }
  return m;
}

CsrMatrix CsrMatrix::FromTensor(const Tensor& t) {
  CCPERF_CHECK(t.GetShape().Rank() == 2, "FromTensor requires rank-2, got ",
               t.GetShape().ToString());
  return FromDense(t.GetShape().Dim(0), t.GetShape().Dim(1), t.Data());
}

double CsrMatrix::Sparsity() const {
  const std::int64_t total = rows_ * cols_;
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(Nnz()) / static_cast<double>(total);
}

std::vector<float> CsrMatrix::ToDense() const {
  std::vector<float> dense(static_cast<std::size_t>(rows_ * cols_), 0.0f);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t p = row_ptr_[static_cast<std::size_t>(r)];
         p < row_ptr_[static_cast<std::size_t>(r) + 1]; ++p) {
      dense[static_cast<std::size_t>(r * cols_ + col_idx_[static_cast<std::size_t>(p)])] =
          values_[static_cast<std::size_t>(p)];
    }
  }
  return dense;
}

void CsrMatrix::MultiplyDense(std::span<const float> b, std::int64_t n,
                              std::span<float> c) const {
  CCPERF_CHECK(static_cast<std::int64_t>(b.size()) == cols_ * n,
               "B size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(c.size()) == rows_ * n,
               "C size mismatch");
  const float* bp = b.data();
  float* cp = c.data();
  ParallelForChunks(
      0, static_cast<std::size_t>(rows_),
      [this, bp, cp, n](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          float* crow = cp + static_cast<std::int64_t>(r) * n;
          for (std::int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
          for (std::int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
            const float v = values_[static_cast<std::size_t>(p)];
            const float* brow =
                bp + static_cast<std::int64_t>(col_idx_[static_cast<std::size_t>(p)]) * n;
            for (std::int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
          }
        }
      },
      8);
}

void CsrMatrix::MultiplyVector(std::span<const float> x,
                               std::span<float> y) const {
  CCPERF_CHECK(static_cast<std::int64_t>(x.size()) == cols_, "x size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(y.size()) == rows_, "y size mismatch");
  for (std::int64_t r = 0; r < rows_; ++r) {
    float acc = 0.0f;
    for (std::int64_t p = row_ptr_[static_cast<std::size_t>(r)];
         p < row_ptr_[static_cast<std::size_t>(r) + 1]; ++p) {
      acc += values_[static_cast<std::size_t>(p)] *
             x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(p)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

}  // namespace ccperf
