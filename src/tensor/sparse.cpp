#include "tensor/sparse.h"

#include <limits>

#include "common/check.h"
#include "common/threading.h"
#include "tensor/sparse_kernels.h"

namespace ccperf {

namespace {

void CheckSparseExtents(std::int64_t rows, std::int64_t cols,
                        std::span<const float> dense) {
  CCPERF_CHECK(rows >= 0 && cols >= 0, "negative sparse extent");
  CCPERF_CHECK(static_cast<std::int64_t>(dense.size()) == rows * cols,
               "dense size mismatch");
  // col_idx_ is int32 to halve index bandwidth in the multiply kernels;
  // reject matrices whose column space it cannot address. (BSR stores
  // block-column indices, but guarding the element extent keeps both
  // formats interchangeable for the same matrix.)
  CCPERF_CHECK(cols <= std::numeric_limits<std::int32_t>::max(),
               "column count ", cols, " exceeds int32 index range");
}

}  // namespace

CsrMatrix CsrMatrix::FromDense(std::int64_t rows, std::int64_t cols,
                               std::span<const float> dense) {
  CheckSparseExtents(rows, cols, dense);
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.resize(static_cast<std::size_t>(rows) + 1, 0);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      const float v = dense[static_cast<std::size_t>(r * cols + c)];
      if (v != 0.0f) {
        m.col_idx_.push_back(static_cast<std::int32_t>(c));
        m.values_.push_back(v);
      }
    }
    m.row_ptr_[static_cast<std::size_t>(r) + 1] =
        static_cast<std::int64_t>(m.values_.size());
  }
  return m;
}

CsrMatrix CsrMatrix::FromTensor(const Tensor& t) {
  CCPERF_CHECK(t.GetShape().Rank() == 2, "FromTensor requires rank-2, got ",
               t.GetShape().ToString());
  return FromDense(t.GetShape().Dim(0), t.GetShape().Dim(1), t.Data());
}

double CsrMatrix::Sparsity() const {
  const std::int64_t total = rows_ * cols_;
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(Nnz()) / static_cast<double>(total);
}

std::vector<float> CsrMatrix::ToDense() const {
  std::vector<float> dense(static_cast<std::size_t>(rows_ * cols_), 0.0f);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t p = row_ptr_[static_cast<std::size_t>(r)];
         p < row_ptr_[static_cast<std::size_t>(r) + 1]; ++p) {
      dense[static_cast<std::size_t>(r * cols_ + col_idx_[static_cast<std::size_t>(p)])] =
          values_[static_cast<std::size_t>(p)];
    }
  }
  return dense;
}

void CsrMatrix::MultiplyDense(std::span<const float> b, std::int64_t n,
                              std::span<float> c) const {
  CCPERF_CHECK(static_cast<std::int64_t>(b.size()) == cols_ * n,
               "B size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(c.size()) == rows_ * n,
               "C size mismatch");
  detail::SpmmCsr(rows_, cols_, n, row_ptr_.data(), col_idx_.data(),
                  values_.data(), b.data(), c.data());
}

void CsrMatrix::MultiplyDenseScalar(std::span<const float> b, std::int64_t n,
                                    std::span<float> c) const {
  CCPERF_CHECK(static_cast<std::int64_t>(b.size()) == cols_ * n,
               "B size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(c.size()) == rows_ * n,
               "C size mismatch");
  const float* bp = b.data();
  float* cp = c.data();
  ParallelForChunks(
      0, static_cast<std::size_t>(rows_),
      [this, bp, cp, n](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          float* crow = cp + static_cast<std::int64_t>(r) * n;
          for (std::int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
          for (std::int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
            const float v = values_[static_cast<std::size_t>(p)];
            const float* brow =
                bp + static_cast<std::int64_t>(col_idx_[static_cast<std::size_t>(p)]) * n;
            for (std::int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
          }
        }
      },
      8);
}

void CsrMatrix::MultiplyVector(std::span<const float> x,
                               std::span<float> y) const {
  CCPERF_CHECK(static_cast<std::int64_t>(x.size()) == cols_, "x size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(y.size()) == rows_, "y size mismatch");
  for (std::int64_t r = 0; r < rows_; ++r) {
    float acc = 0.0f;
    for (std::int64_t p = row_ptr_[static_cast<std::size_t>(r)];
         p < row_ptr_[static_cast<std::size_t>(r) + 1]; ++p) {
      acc += values_[static_cast<std::size_t>(p)] *
             x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(p)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

// --- BsrMatrix --------------------------------------------------------------

BsrMatrix BsrMatrix::FromDense(std::int64_t rows, std::int64_t cols,
                               std::span<const float> dense) {
  CheckSparseExtents(rows, cols, dense);
  BsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  const std::int64_t block_rows = (rows + kBlockRows - 1) / kBlockRows;
  const std::int64_t block_cols = (cols + kBlockCols - 1) / kBlockCols;
  m.row_ptr_.resize(static_cast<std::size_t>(block_rows) + 1, 0);
  for (std::int64_t ib = 0; ib < block_rows; ++ib) {
    for (std::int64_t jb = 0; jb < block_cols; ++jb) {
      float blk[kBlockSize] = {};
      std::int64_t blk_nnz = 0;
      const std::int64_t rv = std::min(kBlockRows, rows - ib * kBlockRows);
      const std::int64_t cv = std::min(kBlockCols, cols - jb * kBlockCols);
      for (std::int64_t r = 0; r < rv; ++r) {
        const float* srow =
            dense.data() + (ib * kBlockRows + r) * cols + jb * kBlockCols;
        for (std::int64_t c = 0; c < cv; ++c) {
          const float v = srow[c];
          blk[r * kBlockCols + c] = v;
          if (v != 0.0f) ++blk_nnz;
        }
      }
      if (blk_nnz > 0) {
        m.col_idx_.push_back(static_cast<std::int32_t>(jb));
        m.values_.insert(m.values_.end(), blk, blk + kBlockSize);
        m.nnz_ += blk_nnz;
      }
    }
    m.row_ptr_[static_cast<std::size_t>(ib) + 1] =
        static_cast<std::int64_t>(m.col_idx_.size());
  }
  return m;
}

BsrMatrix BsrMatrix::FromTensor(const Tensor& t) {
  CCPERF_CHECK(t.GetShape().Rank() == 2, "FromTensor requires rank-2, got ",
               t.GetShape().ToString());
  return FromDense(t.GetShape().Dim(0), t.GetShape().Dim(1), t.Data());
}

double BsrMatrix::DenseBlockFill(std::int64_t rows, std::int64_t cols,
                                 std::span<const float> dense) {
  CheckSparseExtents(rows, cols, dense);
  std::int64_t nnz = 0;
  std::int64_t blocks = 0;
  const std::int64_t block_rows = (rows + kBlockRows - 1) / kBlockRows;
  const std::int64_t block_cols = (cols + kBlockCols - 1) / kBlockCols;
  for (std::int64_t ib = 0; ib < block_rows; ++ib) {
    for (std::int64_t jb = 0; jb < block_cols; ++jb) {
      const std::int64_t rv = std::min(kBlockRows, rows - ib * kBlockRows);
      const std::int64_t cv = std::min(kBlockCols, cols - jb * kBlockCols);
      std::int64_t blk_nnz = 0;
      for (std::int64_t r = 0; r < rv; ++r) {
        const float* srow =
            dense.data() + (ib * kBlockRows + r) * cols + jb * kBlockCols;
        for (std::int64_t c = 0; c < cv; ++c) {
          if (srow[c] != 0.0f) ++blk_nnz;
        }
      }
      if (blk_nnz > 0) {
        ++blocks;
        nnz += blk_nnz;
      }
    }
  }
  if (blocks == 0) return 1.0;
  return static_cast<double>(nnz) /
         static_cast<double>(blocks * kBlockSize);
}

double BsrMatrix::Fill() const {
  if (col_idx_.empty()) return 1.0;
  return static_cast<double>(nnz_) /
         static_cast<double>(StoredBlocks() * kBlockSize);
}

double BsrMatrix::Sparsity() const {
  const std::int64_t total = rows_ * cols_;
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(nnz_) / static_cast<double>(total);
}

std::vector<float> BsrMatrix::ToDense() const {
  std::vector<float> dense(static_cast<std::size_t>(rows_ * cols_), 0.0f);
  const std::int64_t block_rows = (rows_ + kBlockRows - 1) / kBlockRows;
  for (std::int64_t ib = 0; ib < block_rows; ++ib) {
    for (std::int64_t p = row_ptr_[static_cast<std::size_t>(ib)];
         p < row_ptr_[static_cast<std::size_t>(ib) + 1]; ++p) {
      const float* blk = values_.data() + p * kBlockSize;
      const std::int64_t c0 =
          static_cast<std::int64_t>(col_idx_[static_cast<std::size_t>(p)]) *
          kBlockCols;
      const std::int64_t rv = std::min(kBlockRows, rows_ - ib * kBlockRows);
      const std::int64_t cv = std::min(kBlockCols, cols_ - c0);
      for (std::int64_t r = 0; r < rv; ++r) {
        for (std::int64_t c = 0; c < cv; ++c) {
          dense[static_cast<std::size_t>((ib * kBlockRows + r) * cols_ + c0 +
                                         c)] = blk[r * kBlockCols + c];
        }
      }
    }
  }
  return dense;
}

void BsrMatrix::MultiplyDense(std::span<const float> b, std::int64_t n,
                              std::span<float> c) const {
  CCPERF_CHECK(static_cast<std::int64_t>(b.size()) == cols_ * n,
               "B size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(c.size()) == rows_ * n,
               "C size mismatch");
  detail::SpmmBsr(rows_, cols_, n, (rows_ + kBlockRows - 1) / kBlockRows,
                  row_ptr_.data(), col_idx_.data(), values_.data(), b.data(),
                  c.data());
}

void BsrMatrix::MultiplyVector(std::span<const float> x,
                               std::span<float> y) const {
  CCPERF_CHECK(static_cast<std::int64_t>(x.size()) == cols_, "x size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(y.size()) == rows_, "y size mismatch");
  const std::int64_t block_rows = (rows_ + kBlockRows - 1) / kBlockRows;
  for (std::int64_t ib = 0; ib < block_rows; ++ib) {
    float acc[kBlockRows] = {};
    for (std::int64_t p = row_ptr_[static_cast<std::size_t>(ib)];
         p < row_ptr_[static_cast<std::size_t>(ib) + 1]; ++p) {
      const float* blk = values_.data() + p * kBlockSize;
      const std::int64_t c0 =
          static_cast<std::int64_t>(col_idx_[static_cast<std::size_t>(p)]) *
          kBlockCols;
      const std::int64_t cv = std::min(kBlockCols, cols_ - c0);
      for (std::int64_t cc = 0; cc < cv; ++cc) {
        const float xv = x[static_cast<std::size_t>(c0 + cc)];
        for (std::int64_t r = 0; r < kBlockRows; ++r) {
          acc[r] += blk[r * kBlockCols + cc] * xv;
        }
      }
    }
    const std::int64_t rv = std::min(kBlockRows, rows_ - ib * kBlockRows);
    for (std::int64_t r = 0; r < rv; ++r) {
      y[static_cast<std::size_t>(ib * kBlockRows + r)] = acc[r];
    }
  }
}

}  // namespace ccperf
