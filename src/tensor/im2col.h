// im2col: unfold convolution input patches into a matrix so convolution
// becomes GEMM — the standard Caffe lowering this library mirrors.
#pragma once

#include <cstdint>
#include <span>

namespace ccperf {

/// Geometry of a 2-D convolution (single group).
struct ConvGeometry {
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  [[nodiscard]] std::int64_t OutH() const {
    return (in_h + 2 * pad - kernel_h) / stride + 1;
  }
  [[nodiscard]] std::int64_t OutW() const {
    return (in_w + 2 * pad - kernel_w) / stride + 1;
  }
  /// Rows of the unfolded matrix: C*Kh*Kw.
  [[nodiscard]] std::int64_t PatchSize() const {
    return in_channels * kernel_h * kernel_w;
  }
  /// Columns of the unfolded matrix: OutH*OutW.
  [[nodiscard]] std::int64_t OutPixels() const { return OutH() * OutW(); }
};

/// Unfold one image (CHW, row-major) into columns[PatchSize, OutPixels].
/// Out-of-bounds (padding) samples are written as 0.
void Im2Col(const ConvGeometry& g, std::span<const float> image,
            std::span<float> columns);

/// Inverse scatter: fold columns[PatchSize, OutPixels] back into an image,
/// *accumulating* overlapping contributions (the adjoint of Im2Col, used by
/// convolution backward). `image` is overwritten.
void Col2Im(const ConvGeometry& g, std::span<const float> columns,
            std::span<float> image);

}  // namespace ccperf
