#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.h"
#include "common/threading.h"
#include "tensor/kernel_tile.h"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

#if defined(__GNUC__) || defined(__clang__)
#define CCPERF_QUANT_RESTRICT __restrict__
#else
#define CCPERF_QUANT_RESTRICT
#endif

namespace ccperf {

namespace {

// The int8 kernel reuses the float kernel's tile geometry (kernel_tile.h):
// same mr-row panels, same ISA-sized column panels, same L1-resident K
// slices. K is consumed in GROUPS sized to the ISA's dot-product step:
// quads of int8 for vpdpbusd on VNNI parts (64 MACs per instruction — the
// 4x-over-FMA ceiling the bench chases), pairs of int16 for vpmaddwd /
// the scalar fallback. Every group occupies kMr * 2 int16 slots of A panel
// and kNr * 2 int16 slots of B panel in BOTH layouts (4 bytes per lane
// word either way), so all the blocking arithmetic below is
// layout-independent.
using kernel::kKc;
using kernel::kMr;
using kernel::kNc;
using kernel::kNr;

#if defined(__AVX512BW__) && defined(__AVX512VNNI__)
#define CCPERF_INT8_QUAD 1
#endif

#if defined(CCPERF_INT8_QUAD)
/// K steps per packed lane word: int8 quads for vpdpbusd.
constexpr std::int64_t kKGroup = 4;
/// vpdpbusd multiplies UNSIGNED bytes by signed bytes, so activations are
/// packed biased: u = q_b + 128 in [1, 255]. The kernel accumulates
/// sum(a * (b + 128)) and the C image is pre-filled with
/// -128 * sum(a) per row, so the final int32s are exactly sum(a * b) —
/// bitwise identical to the signed naive oracle (all exact int32;
/// kInt8MaxDepth bounds every intermediate below 2^31).
constexpr std::int32_t kBOffset = 128;
#else
constexpr std::int64_t kKGroup = 2;
constexpr std::int32_t kBOffset = 0;
#endif
static_assert(kKc % kKGroup == 0, "K slices pack whole k-groups");

/// kc rounded up to a whole number of k-groups.
constexpr std::int64_t KPad(std::int64_t kc) {
  return (kc + kKGroup - 1) & ~(kKGroup - 1);
}

/// Max |v| over finite entries (non-finite entries are ignored). This runs
/// over the whole activation tensor once per GemmInt8 call, so the AVX-512
/// path below matters; it computes the identical float (replacing excluded
/// lanes by 0 cannot change a max over non-negative values, and float max
/// is exact and order-independent).
float FiniteMaxAbs(std::span<const float> v) {
#if defined(__AVX512F__)
  const __m512 absmask =
      _mm512_castsi512_ps(_mm512_set1_epi32(0x7FFFFFFF));
  const __m512 fmax = _mm512_set1_ps(std::numeric_limits<float>::max());
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= v.size(); i += 32) {
    const __m512 a0 = _mm512_and_ps(_mm512_loadu_ps(v.data() + i), absmask);
    const __m512 a1 =
        _mm512_and_ps(_mm512_loadu_ps(v.data() + i + 16), absmask);
    // Unordered (NaN) and |x| > FLT_MAX lanes fail the LE compare and are
    // left out of the running max.
    acc0 = _mm512_mask_max_ps(acc0, _mm512_cmp_ps_mask(a0, fmax, _CMP_LE_OQ),
                              acc0, a0);
    acc1 = _mm512_mask_max_ps(acc1, _mm512_cmp_ps_mask(a1, fmax, _CMP_LE_OQ),
                              acc1, a1);
  }
  float m = _mm512_reduce_max_ps(_mm512_max_ps(acc0, acc1));
  for (; i < v.size(); ++i) {
    const float a = std::fabs(v[i]);
    if (a <= std::numeric_limits<float>::max()) m = std::max(m, a);
  }
  return m;
#else
  float m = 0.0f;
  for (const float x : v) {
    const float a = std::fabs(x);
    if (a <= std::numeric_limits<float>::max()) m = std::max(m, a);
  }
  return m;
#endif
}

/// Shared quantizer core: see QuantizeToInt8's contract in quant.h.
inline std::int32_t QuantizeCore(float v, float inv_scale) {
  const float scaled = v * inv_scale;
  if (std::isnan(scaled)) return 0;
  if (scaled >= 127.0f) return 127;
  if (scaled <= -127.0f) return -127;
  return static_cast<std::int32_t>(std::lrintf(scaled));
}

/// Dequantize one finished int32 row: c = acc * deq [+ bias] [relu]. Both
/// GemmInt8 and NaiveGemmInt8 funnel through this ONE function so their
/// float epilogue math is instruction-identical — that is what upgrades the
/// differential oracle from tolerance-based to bitwise.
void DequantRow(const std::int32_t* CCPERF_QUANT_RESTRICT acc,
                std::int64_t count, float deq, float bias, bool relu,
                float* CCPERF_QUANT_RESTRICT out) {
  for (std::int64_t j = 0; j < count; ++j) {
    float v = static_cast<float>(acc[j]) * deq + bias;
    if (relu) v = std::max(0.0f, v);
    out[j] = v;
  }
}

/// Register tile: acc[kMr][kNr] += A_panel[groups x kMr] *
/// B_panel[groups x kNr], accumulated into the valid mv x nv corner of the
/// (pre-filled) int32 C image. Tail lanes multiply packed zeros and are
/// never written back. All arithmetic is exact int32, so the result is
/// independent of tile alignment, chunk boundaries, blocking, and pool
/// size.
void MicroKernelInt8(std::int64_t groups,
                     const std::int16_t* CCPERF_QUANT_RESTRICT ap,
                     const std::int16_t* CCPERF_QUANT_RESTRICT bp,
                     std::int32_t* CCPERF_QUANT_RESTRICT c, std::int64_t ldc,
                     std::int64_t mv, std::int64_t nv) {
  alignas(64) std::int32_t acc[kMr][kNr];
#if defined(__AVX512BW__)
  // One zmm holds 16 int32 lanes; kNr = 32 under AVX-512 (kernel_tile.h),
  // so each row carries two accumulators. Per k-group: one 32-bit
  // broadcast of the row's packed A lane word and a dot-product against 32
  // interleaved B lane words — vpdpbusd (u8 x s8 quads, 64 MACs/instr) on
  // VNNI parts, else vpmaddwd + vpaddd on int16 pairs. Either way the
  // int32s are exact.
  static_assert(kNr == 32, "AVX-512 int8 microkernel assumes 32-wide panels");
  __m512i vacc[kMr][2];
  for (std::int64_t r = 0; r < kMr; ++r) {
    vacc[r][0] = _mm512_setzero_si512();
    vacc[r][1] = _mm512_setzero_si512();
  }
  for (std::int64_t kk = 0; kk < groups; ++kk) {
    const std::int16_t* brow = bp + kk * kNr * 2;
    const std::int16_t* arow = ap + kk * kMr * 2;
    const __m512i b0 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(brow));
    const __m512i b1 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(brow + kNr));
    for (std::int64_t r = 0; r < kMr; ++r) {
      std::int32_t lane;
      std::memcpy(&lane, arow + r * 2, sizeof(lane));
      const __m512i av = _mm512_set1_epi32(lane);
#if defined(CCPERF_INT8_QUAD)
      // src1 = unsigned (biased B bytes), src2 = signed (A bytes).
      vacc[r][0] = _mm512_dpbusd_epi32(vacc[r][0], b0, av);
      vacc[r][1] = _mm512_dpbusd_epi32(vacc[r][1], b1, av);
#else
      vacc[r][0] = _mm512_add_epi32(vacc[r][0], _mm512_madd_epi16(av, b0));
      vacc[r][1] = _mm512_add_epi32(vacc[r][1], _mm512_madd_epi16(av, b1));
#endif
    }
  }
  for (std::int64_t r = 0; r < kMr; ++r) {
    _mm512_store_si512(reinterpret_cast<void*>(&acc[r][0]), vacc[r][0]);
    _mm512_store_si512(reinterpret_cast<void*>(&acc[r][16]), vacc[r][1]);
  }
#else
  for (std::int64_t r = 0; r < kMr; ++r) {
    for (std::int64_t j = 0; j < kNr; ++j) acc[r][j] = 0;
  }
  for (std::int64_t kk = 0; kk < groups; ++kk) {
    const std::int16_t* brow = bp + kk * kNr * 2;
    const std::int16_t* arow = ap + kk * kMr * 2;
    for (std::int64_t r = 0; r < kMr; ++r) {
      const std::int32_t a0 = arow[r * 2];
      const std::int32_t a1 = arow[r * 2 + 1];
      for (std::int64_t j = 0; j < kNr; ++j) {
        acc[r][j] += a0 * brow[j * 2] + a1 * brow[j * 2 + 1];
      }
    }
  }
#endif
  for (std::int64_t r = 0; r < mv; ++r) {
    std::int32_t* crow = c + r * ldc;
    for (std::int64_t j = 0; j < nv; ++j) crow[j] += acc[r][j];
  }
}

#if defined(__AVX512BW__)
/// 16-lane QuantizeCore: every lane makes the exact decision the scalar
/// path makes. min/max clamp to [-127, 127] first (MINPS/MAXPS return the
/// second operand when the first is NaN, so NaN lanes clamp to a finite
/// value), vcvtps2dq rounds nearest-even exactly like lrintf under the
/// default MXCSR mode, and the ordered-compare mask zeroes NaN lanes the
/// way the scalar isnan branch does.
inline __m512i QuantizeCore16(__m512 v, __m512 inv) {
  const __m512 scaled = _mm512_mul_ps(v, inv);
  const __mmask16 ord = _mm512_cmp_ps_mask(scaled, scaled, _CMP_ORD_Q);
  const __m512 lo = _mm512_max_ps(scaled, _mm512_set1_ps(-127.0f));
  const __m512 hi = _mm512_min_ps(lo, _mm512_set1_ps(127.0f));
  return _mm512_maskz_cvtps_epi32(ord, hi);
}
#endif

/// Quantize B[pc:pc+kc, jc:jc+nc] into kNr-wide, group-interleaved column
/// panels: K step kk of column j lands in the byte/int16 lane word at
/// panel int16 offset ((kk/kKGroup) * kNr + j) * 2. Tail columns and the
/// K-group pad are packed as quantized zero (0, or kBOffset on the biased
/// VNNI layout — a padded B zero times a padded A zero contributes
/// nothing, and padded K steps multiply A values that are packed zero).
/// This runs once per (jc, pc) block on the hot path, so the AVX-512
/// variants quantize 16 columns x one K-group per iteration; they must
/// (and do) make bitwise-identical decisions to the scalar QuantizeCore.
void PackQuantizedB(const float* bsrc, std::int64_t n, std::int64_t jc,
                    std::int64_t nc_eff, std::int64_t pc, std::int64_t kc_eff,
                    float inv_scale, std::int16_t* bpk) {
  const std::int64_t npanels = (nc_eff + kNr - 1) / kNr;
  const std::int64_t groups = KPad(kc_eff) / kKGroup;
#if defined(__AVX512BW__)
  static_assert(kNr == 32, "AVX-512 int8 pack assumes 32-wide panels");
  const __m512 inv = _mm512_set1_ps(inv_scale);
  for (std::int64_t jp = 0; jp < npanels; ++jp) {
    std::int16_t* panel = bpk + jp * kNr * groups * 2;
    const std::int64_t j0 = jc + jp * kNr;
    const std::int64_t nv = std::min(kNr, jc + nc_eff - j0);
    const __mmask16 m0 = nv >= 16 ? static_cast<__mmask16>(0xFFFF)
                                  : static_cast<__mmask16>((1u << nv) - 1u);
    const __mmask16 m1 =
        nv >= 32 ? static_cast<__mmask16>(0xFFFF)
        : nv > 16
            ? static_cast<__mmask16>((1u << (nv - 16)) - 1u)
            : static_cast<__mmask16>(0);
    for (std::int64_t kk = 0; kk < groups; ++kk) {
      // K steps kKGroup*kk .. kKGroup*kk+kKGroup-1 of this K slice; steps
      // past kc_eff are the K-group zero pad. Masked loads zero the column
      // tail, and zero quantizes to exactly 0 — the required padding.
      const float* g0 = bsrc + (pc + kKGroup * kk) * n + j0;
      std::int16_t* drow = panel + kk * kNr * 2;
      for (int half = 0; half < 2; ++half) {
        const __mmask16 m = half == 0 ? m0 : m1;
        __m512i q[kKGroup];
        for (std::int64_t t = 0; t < kKGroup; ++t) {
          // m == 0 (column tail) skips the load: never form an address
          // past the end of B.
          const bool in_k = kKGroup * kk + t < kc_eff;
          const __m512 v =
              in_k && m != 0
                  ? _mm512_maskz_loadu_ps(m, g0 + t * n + 16 * half)
                  : _mm512_setzero_ps();
          q[t] = QuantizeCore16(v, inv);
        }
#if defined(CCPERF_INT8_QUAD)
        // Biased to unsigned bytes (q + 128 in [1, 255]) and composed into
        // one lane word per column: byte t of the word is K step t.
        const __m512i off = _mm512_set1_epi32(kBOffset);
        const __m512i lane = _mm512_or_si512(
            _mm512_or_si512(_mm512_add_epi32(q[0], off),
                            _mm512_slli_epi32(_mm512_add_epi32(q[1], off), 8)),
            _mm512_or_si512(
                _mm512_slli_epi32(_mm512_add_epi32(q[2], off), 16),
                _mm512_slli_epi32(_mm512_add_epi32(q[3], off), 24)));
#else
        // Interleave (q0[j], q1[j]) into one 32-bit word per column: the
        // low int16 is q0 (values fit in 8 bits, so masking the low half
        // preserves the sign) and the high int16 is q1.
        const __m512i lane = _mm512_or_si512(
            _mm512_slli_epi32(q[1], 16),
            _mm512_and_si512(q[0], _mm512_set1_epi32(0xFFFF)));
#endif
        _mm512_storeu_si512(reinterpret_cast<void*>(drow + 32 * half), lane);
      }
    }
  }
#else
  for (std::int64_t jp = 0; jp < npanels; ++jp) {
    std::int16_t* panel = bpk + jp * kNr * groups * 2;
    const std::int64_t j0 = jc + jp * kNr;
    const std::int64_t nv = std::min(kNr, jc + nc_eff - j0);
    for (std::int64_t kk = 0; kk < groups * 2; ++kk) {
      const bool in_k = kk < kc_eff;  // false only for the odd-K pad row
      const float* srow = in_k ? bsrc + (pc + kk) * n + j0 : nullptr;
      std::int16_t* drow = panel + (kk / 2) * kNr * 2 + (kk % 2);
      for (std::int64_t j = 0; j < kNr; ++j) {
        const std::int32_t q =
            (in_k && j < nv) ? QuantizeCore(srow[j], inv_scale) : 0;
        drow[j * 2] = static_cast<std::int16_t>(q);
      }
    }
  }
#endif
}

}  // namespace

QuantizedPackedA::QuantizedPackedA() = default;
QuantizedPackedA::~QuantizedPackedA() = default;
QuantizedPackedA::QuantizedPackedA(const QuantizedPackedA&) = default;
QuantizedPackedA& QuantizedPackedA::operator=(const QuantizedPackedA&) =
    default;
QuantizedPackedA::QuantizedPackedA(QuantizedPackedA&&) noexcept = default;
QuantizedPackedA& QuantizedPackedA::operator=(QuantizedPackedA&&) noexcept =
    default;

std::int64_t QuantizedPackedA::PackedBytes() const {
  // The panel store is int16-typed, but the information content is the
  // int8 grid: report the bytes an int8 serialization would occupy (1 byte
  // per packed K-step value + 4 per row scale) — what the memory model
  // prices. data_ holds kKGroup values per lane word (= 2 int16 slots).
  return static_cast<std::int64_t>(data_.size()) * kKGroup / 2 +
         static_cast<std::int64_t>(scales_.size()) *
             static_cast<std::int64_t>(sizeof(float));
}

std::int8_t QuantizeToInt8(float v, float scale) {
  if (scale <= 0.0f || std::isnan(scale)) return 0;
  return static_cast<std::int8_t>(QuantizeCore(v, 1.0f / scale));
}

float ActivationScale(std::span<const float> b) {
  return FiniteMaxAbs(b) / 127.0f;
}

QuantizedPackedA QuantizePackA(std::int64_t m, std::int64_t k,
                               std::span<const float> a) {
  CCPERF_CHECK(m >= 0 && k >= 0, "negative GEMM extent");
  CCPERF_CHECK(static_cast<std::int64_t>(a.size()) == m * k, "A size mismatch");
  CCPERF_CHECK(k <= kInt8MaxDepth, "int8 GEMM depth ", k,
               " exceeds the int32 no-overflow bound ", kInt8MaxDepth);
  QuantizedPackedA packed;
  packed.m_ = m;
  packed.k_ = k;
  if (m == 0) return packed;
  // Per-row (per output channel) symmetric scales. An all-zero row keeps
  // scale 0: every quantized value is 0 and the epilogue dequantizes by 0.
  packed.scales_.resize(static_cast<std::size_t>(m));
  packed.rowsums_.assign(static_cast<std::size_t>(m), 0);
  packed.colsums_.assign(static_cast<std::size_t>(k), 0);
  std::vector<float> inv(static_cast<std::size_t>(m), 0.0f);
  for (std::int64_t i = 0; i < m; ++i) {
    const float s =
        FiniteMaxAbs(a.subspan(static_cast<std::size_t>(i * k),
                               static_cast<std::size_t>(k))) /
        127.0f;
    packed.scales_[static_cast<std::size_t>(i)] = s;
    inv[static_cast<std::size_t>(i)] = s > 0.0f ? 1.0f / s : 0.0f;
  }
  if (k == 0) return packed;

  const std::int64_t panels = (m + kMr - 1) / kMr;
  std::int64_t stored_k = 0;
  for (std::int64_t pc = 0; pc < k; pc += kKc) {
    stored_k += KPad(std::min(kKc, k - pc));
  }
  // Every K step stores one value: an int16 slot on the pair layout, a
  // byte (half a slot) on the quad layout.
  packed.data_.assign(
      static_cast<std::size_t>(panels * kMr * stored_k * 2 / kKGroup), 0);
  const float* src = a.data();
  std::int16_t* dst = packed.data_.data();
  for (std::int64_t pc = 0; pc < k; pc += kKc) {
    const std::int64_t kc_eff = std::min(kKc, k - pc);
    const std::int64_t kc_pad = KPad(kc_eff);
    // Full K slices are kKc long (a multiple of kKGroup), so the block at
    // pc starts at panels * kMr * pc K-step values; only the final slice
    // carries group padding.
    std::int16_t* block = dst + panels * kMr * pc * 2 / kKGroup;
    for (std::int64_t i = 0; i < panels; ++i) {
      std::int16_t* panel = block + i * kMr * kc_pad * 2 / kKGroup;
      const std::int64_t mv = std::min(kMr, m - i * kMr);
      for (std::int64_t r = 0; r < mv; ++r) {
        const std::int64_t row = i * kMr + r;
        const float* arow = src + row * k + pc;
        const float is = inv[static_cast<std::size_t>(row)];
        std::int32_t rsum = 0;
        for (std::int64_t kk = 0; kk < kc_eff; ++kk) {
          const std::int32_t q = QuantizeCore(arow[kk], is);
          rsum += q;
          packed.colsums_[static_cast<std::size_t>(pc + kk)] += q;
#if defined(CCPERF_INT8_QUAD)
          reinterpret_cast<std::int8_t*>(
              panel)[((kk / 4) * kMr + r) * 4 + kk % 4] =
              static_cast<std::int8_t>(q);
#else
          panel[(kk / 2) * kMr * 2 + r * 2 + (kk % 2)] =
              static_cast<std::int16_t>(q);
#endif
        }
        packed.rowsums_[static_cast<std::size_t>(row)] += rsum;
      }
      // Tail rows and the K-group pad stay zero from assign(); they
      // multiply into accumulator lanes the write-back discards (or add
      // exact 0 — biased B pad bytes meet packed-zero A bytes).
    }
  }
  return packed;
}

namespace {

/// Argument contract shared by GemmInt8 and GemmInt8Abft.
void CheckInt8Args(std::int64_t n, std::span<const float> b,
                   std::span<float> c, const Int8Epilogue& epilogue,
                   std::int64_t m, std::int64_t k) {
  CCPERF_CHECK(n >= 0, "negative GEMM extent");
  CCPERF_CHECK(static_cast<std::int64_t>(b.size()) == k * n, "B size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(c.size()) == m * n, "C size mismatch");
  CCPERF_CHECK(epilogue.bias.empty() ||
                   static_cast<std::int64_t>(epilogue.bias.size()) == m,
               "bias size mismatch");
}

/// The blocked int8 kernel: fills `cp` (an m x n int32 image) with the
/// exact unbiased accumulation sum_k q_ik * qb_kj. On the biased VNNI
/// layout the image starts at the per-row offset correction -128 * sum(q_a)
/// (see kBOffset above), which the kernel's biased products cancel exactly,
/// so the finished image is layout-independent.
void ComputeInt8Image(std::int64_t m, std::int64_t k,
                      const std::int16_t* pa, const std::int32_t* rowsums,
                      std::int64_t n, std::span<const float> b, float inv_b,
                      std::int32_t* cp) {
  if (kBOffset != 0 && k > 0) {
    for (std::int64_t i = 0; i < m; ++i) {
      const std::int32_t corr = -kBOffset * rowsums[i];
      if (corr != 0) std::fill(cp + i * n, cp + (i + 1) * n, corr);
    }
  }
  (void)rowsums;
  if (k > 0) {
    const std::int64_t panels = (m + kMr - 1) / kMr;
    const float* bsrc = b.data();
    const std::int64_t max_npanels = (std::min(n, kNc) + kNr - 1) / kNr;
    std::vector<std::int16_t> bpack(static_cast<std::size_t>(
        max_npanels * kNr * 2 * KPad(std::min(k, kKc)) / kKGroup));
    std::int16_t* bpk = bpack.data();

    for (std::int64_t jc = 0; jc < n; jc += kNc) {
      const std::int64_t nc_eff = std::min(kNc, n - jc);
      const std::int64_t npanels = (nc_eff + kNr - 1) / kNr;
      for (std::int64_t pc = 0; pc < k; pc += kKc) {
        const std::int64_t kc_eff = std::min(kKc, k - pc);
        const std::int64_t groups = KPad(kc_eff) / kKGroup;
        PackQuantizedB(bsrc, n, jc, nc_eff, pc, kc_eff, inv_b, bpk);
        const std::int16_t* pa_block = pa + panels * kMr * pc * 2 / kKGroup;
        // Tasks own disjoint mr-panels (disjoint C rows); bpack is
        // read-only here, so the sweep is race-free, and int32 addition is
        // exact, so the result is chunking-independent.
        ParallelForChunks(
            0, static_cast<std::size_t>(panels),
            [=](std::size_t lo, std::size_t hi) {
              for (std::size_t i = lo; i < hi; ++i) {
                const std::int64_t row0 = static_cast<std::int64_t>(i) * kMr;
                const std::int16_t* ap = pa_block + row0 * groups * 2;
                const std::int64_t mv = std::min(kMr, m - row0);
                std::int32_t* crow = cp + row0 * n + jc;
                for (std::int64_t jp = 0; jp < npanels; ++jp) {
                  const std::int64_t nv = std::min(kNr, nc_eff - jp * kNr);
                  MicroKernelInt8(groups, ap, bpk + jp * kNr * groups * 2,
                                  crow + jp * kNr, n, mv, nv);
                }
              }
            },
            1);
      }
    }
  }

}

/// Fused dequant + bias + ReLU over the finished int32 image.
void ApplyInt8Epilogue(std::int64_t m, std::int64_t n, const float* scales,
                       std::span<float> c, const Int8Epilogue& epilogue,
                       float b_scale, const std::int32_t* cp) {
  const float* bias = epilogue.bias.empty() ? nullptr : epilogue.bias.data();
  const bool relu = epilogue.relu;
  float* out = c.data();
  ParallelForChunks(
      0, static_cast<std::size_t>(m),
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          DequantRow(cp + static_cast<std::int64_t>(i) * n, n,
                     scales[i] * b_scale, bias != nullptr ? bias[i] : 0.0f,
                     relu, out + static_cast<std::int64_t>(i) * n);
        }
      },
      16);
}

/// ABFT verification of the finished int32 image: per column j the row sum
/// sum_i c32_ij must equal sum_k colsums_[k] * qb_kj, where qb is this
/// call's own re-quantization of B (bitwise-identical decisions to
/// PackQuantizedB's). All arithmetic is exact — int64 sums over int32
/// terms cannot overflow (m, k bounded by kInt8MaxDepth-scale shapes) —
/// so the comparison is equality: any nonzero residual is corruption, not
/// rounding.
AbftCheck VerifyInt8Image(std::int64_t m, std::int64_t k,
                          const std::int32_t* colsums, std::int64_t n,
                          std::span<const float> b, float inv_b,
                          const std::int32_t* cp) {
  AbftCheck check;
  if (n == 0) return check;
  std::vector<std::int64_t> residual(static_cast<std::size_t>(n), 0);
  std::int64_t* res = residual.data();
  const float* bsrc = b.data();
  ParallelForChunks(
      0, static_cast<std::size_t>(n),
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t jz = lo; jz < hi; ++jz) {
          const std::int64_t j = static_cast<std::int64_t>(jz);
          std::int64_t expect = 0;
          for (std::int64_t kk = 0; kk < k; ++kk) {
            expect += static_cast<std::int64_t>(colsums[kk]) *
                      QuantizeCore(bsrc[kk * n + j], inv_b);
          }
          std::int64_t got = 0;
          for (std::int64_t i = 0; i < m; ++i) got += cp[i * n + j];
          res[jz] = got - expect;
        }
      },
      64);
  // Serial scan so the verdict fields are pool-size independent.
  for (std::int64_t j = 0; j < n; ++j) {
    const std::int64_t r = res[static_cast<std::size_t>(j)];
    if (r == 0) continue;
    check.ok = false;
    ++check.bad_columns;
    if (check.first_bad_column < 0) check.first_bad_column = j;
    const double mag = std::abs(static_cast<double>(r));
    if (mag > check.max_ratio) check.max_ratio = mag;
  }
  return check;
}

}  // namespace

void GemmInt8(const QuantizedPackedA& a, std::int64_t n,
              std::span<const float> b, std::span<float> c,
              const Int8Epilogue& epilogue) {
  const std::int64_t m = a.m_;
  const std::int64_t k = a.k_;
  CheckInt8Args(n, b, c, epilogue, m, k);
  if (m == 0 || n == 0) return;
  const float b_scale = ActivationScale(b);
  const float inv_b = b_scale > 0.0f ? 1.0f / b_scale : 0.0f;
  std::vector<std::int32_t> c32(static_cast<std::size_t>(m * n), 0);
  ComputeInt8Image(m, k, a.data_.data(), a.rowsums_.data(), n, b, inv_b,
                   c32.data());
  ApplyInt8Epilogue(m, n, a.scales_.data(), c, epilogue, b_scale, c32.data());
}

AbftCheck GemmInt8Abft(const QuantizedPackedA& a, std::int64_t n,
                       std::span<const float> b, std::span<float> c,
                       const Int8Epilogue& epilogue) {
  const std::int64_t m = a.m_;
  const std::int64_t k = a.k_;
  CheckInt8Args(n, b, c, epilogue, m, k);
  AbftCheck check;
  if (m == 0 || n == 0) return check;
  const float b_scale = ActivationScale(b);
  const float inv_b = b_scale > 0.0f ? 1.0f / b_scale : 0.0f;
  std::vector<std::int32_t> c32(static_cast<std::size_t>(m * n), 0);
  ComputeInt8Image(m, k, a.data_.data(), a.rowsums_.data(), n, b, inv_b,
                   c32.data());
  check = VerifyInt8Image(m, k, a.colsums_.data(), n, b, inv_b, c32.data());
  ApplyInt8Epilogue(m, n, a.scales_.data(), c, epilogue, b_scale, c32.data());
  return check;
}

AbftCheck GemmInt8AbftCorruptForTest(const QuantizedPackedA& a,
                                     std::int64_t n, std::span<const float> b,
                                     std::span<float> c,
                                     const Int8Epilogue& epilogue,
                                     std::int64_t element, int bit) {
  const std::int64_t m = a.m_;
  const std::int64_t k = a.k_;
  CheckInt8Args(n, b, c, epilogue, m, k);
  CCPERF_CHECK(m > 0 && n > 0, "need a non-empty output to corrupt");
  CCPERF_CHECK(element >= 0 && element < m * n,
               "corrupt element out of range");
  CCPERF_CHECK(bit >= 0 && bit <= 31, "corrupt bit out of range");
  const float b_scale = ActivationScale(b);
  const float inv_b = b_scale > 0.0f ? 1.0f / b_scale : 0.0f;
  std::vector<std::int32_t> c32(static_cast<std::size_t>(m * n), 0);
  ComputeInt8Image(m, k, a.data_.data(), a.rowsums_.data(), n, b, inv_b,
                   c32.data());
  std::int32_t& target = c32[static_cast<std::size_t>(element)];
  target = static_cast<std::int32_t>(static_cast<std::uint32_t>(target) ^
                                     (1u << static_cast<unsigned>(bit)));
  const AbftCheck check =
      VerifyInt8Image(m, k, a.colsums_.data(), n, b, inv_b, c32.data());
  ApplyInt8Epilogue(m, n, a.scales_.data(), c, epilogue, b_scale, c32.data());
  return check;
}

void FlipQuantizedBit(QuantizedPackedA& a, std::int64_t row, std::int64_t k,
                      int bit) {
  CCPERF_CHECK(row >= 0 && row < a.m_ && k >= 0 && k < a.k_,
               "flip target (", row, ", ", k, ") outside ", a.m_, " x ", a.k_);
  CCPERF_CHECK(bit >= 0 && bit <= 7, "int8 flip bit must be in [0, 7], got ",
               bit);
  // Mirror QuantizePackA's layout arithmetic exactly (panel base, then the
  // ISA-dependent in-panel offset).
  const std::int64_t panels = (a.m_ + kMr - 1) / kMr;
  const std::int64_t pc = (k / kKc) * kKc;
  const std::int64_t kk = k - pc;
  const std::int64_t kc_pad = KPad(std::min(kKc, a.k_ - pc));
  std::int16_t* block = a.data_.data() + panels * kMr * pc * 2 / kKGroup;
  std::int16_t* panel = block + (row / kMr) * kMr * kc_pad * 2 / kKGroup;
  const std::int64_t r = row % kMr;
#if defined(CCPERF_INT8_QUAD)
  std::int8_t& value =
      reinterpret_cast<std::int8_t*>(panel)[((kk / 4) * kMr + r) * 4 + kk % 4];
  value = static_cast<std::int8_t>(static_cast<std::uint8_t>(value) ^
                                   (1u << static_cast<unsigned>(bit)));
#else
  std::int16_t& value = panel[(kk / 2) * kMr * 2 + r * 2 + (kk % 2)];
  value = static_cast<std::int16_t>(static_cast<std::uint16_t>(value) ^
                                    (1u << static_cast<unsigned>(bit)));
#endif
  // Row/column sums are left stale on purpose: a real SDC in the packed
  // weights would not update them either, and the stale references are
  // exactly what lets GemmInt8Abft detect the flip.
}

void GemmInt8(std::int64_t m, std::int64_t n, std::int64_t k,
              std::span<const float> a, std::span<const float> b,
              std::span<float> c, const Int8Epilogue& epilogue) {
  GemmInt8(QuantizePackA(m, k, a), n, b, c, epilogue);
}

void NaiveGemmInt8(std::int64_t m, std::int64_t n, std::int64_t k,
                   std::span<const float> a, std::span<const float> b,
                   std::span<float> c, const Int8Epilogue& epilogue) {
  CCPERF_CHECK(m >= 0 && n >= 0 && k >= 0, "negative GEMM extent");
  CCPERF_CHECK(static_cast<std::int64_t>(a.size()) == m * k, "A size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(b.size()) == k * n, "B size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(c.size()) == m * n, "C size mismatch");
  CCPERF_CHECK(k <= kInt8MaxDepth, "int8 GEMM depth ", k,
               " exceeds the int32 no-overflow bound ", kInt8MaxDepth);
  CCPERF_CHECK(epilogue.bias.empty() ||
                   static_cast<std::int64_t>(epilogue.bias.size()) == m,
               "bias size mismatch");
  if (m == 0 || n == 0) return;

  const float b_scale = ActivationScale(b);
  const float inv_b = b_scale > 0.0f ? 1.0f / b_scale : 0.0f;
  std::vector<std::int32_t> qb(static_cast<std::size_t>(k * n));
  for (std::size_t i = 0; i < qb.size(); ++i) qb[i] = QuantizeCore(b[i], inv_b);

  std::vector<std::int32_t> qa_row(static_cast<std::size_t>(k));
  std::vector<std::int32_t> acc(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < m; ++i) {
    const float scale =
        FiniteMaxAbs(a.subspan(static_cast<std::size_t>(i * k),
                               static_cast<std::size_t>(k))) /
        127.0f;
    const float inv_a = scale > 0.0f ? 1.0f / scale : 0.0f;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      qa_row[static_cast<std::size_t>(kk)] =
          QuantizeCore(a[static_cast<std::size_t>(i * k + kk)], inv_a);
    }
    std::fill(acc.begin(), acc.end(), 0);
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int32_t av = qa_row[static_cast<std::size_t>(kk)];
      for (std::int64_t j = 0; j < n; ++j) {
        acc[static_cast<std::size_t>(j)] +=
            av * qb[static_cast<std::size_t>(kk * n + j)];
      }
    }
    DequantRow(acc.data(), n, scale * b_scale,
               epilogue.bias.empty()
                   ? 0.0f
                   : epilogue.bias[static_cast<std::size_t>(i)],
               epilogue.relu, c.data() + i * n);
  }
}

}  // namespace ccperf
