// Register-tile geometry shared by the hot kernel TUs.
//
// IMPORTANT: include this only from translation units compiled with
// CCPERF_KERNEL_FLAGS (gemm.cpp, sparse_kernels.cpp). kNr keys off the ISA
// macros those flags enable, so a TU built without them would disagree with
// the kernel TUs about panel widths. That is safe only because every packed
// buffer is produced and consumed inside a single TU: the PackedA layout is
// opaque behind gemm.h, and the sparse kernels pack B per call.
#pragma once

#include <cstdint>

namespace ccperf::kernel {

// kMr x kNr is the register tile: kMr rows of C, kNr columns, accumulated
// in registers over a kKc-long K slice. kNr tracks the widest vector unit
// the compiler may target so the accumulator block fills the register file
// without spilling. kKc keeps one B panel (kKc * kNr floats) L1-resident
// across the mr-panel sweep; kNc bounds the packed-B working set
// (kKc * kNc floats, ~1 MB) to L2.
#if defined(__AVX512F__)
inline constexpr std::int64_t kNr = 32;
#elif defined(__AVX__)
inline constexpr std::int64_t kNr = 16;
#else
inline constexpr std::int64_t kNr = 8;
#endif
inline constexpr std::int64_t kMr = 6;
inline constexpr std::int64_t kKc = 256;
inline constexpr std::int64_t kNc = 1024;
static_assert(kNc % kNr == 0);

}  // namespace ccperf::kernel
