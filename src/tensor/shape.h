// Tensor shape: a small vector of extents with row-major strides.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace ccperf {

/// Immutable-ish shape of a dense row-major tensor. Rank <= 4 in practice
/// (NCHW activations, OIHW weights, rank-2 matrices, rank-1 biases).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  [[nodiscard]] std::size_t Rank() const { return dims_.size(); }
  [[nodiscard]] std::int64_t Dim(std::size_t axis) const;
  [[nodiscard]] const std::vector<std::int64_t>& Dims() const { return dims_; }

  /// Product of all extents (1 for rank-0).
  [[nodiscard]] std::int64_t NumElements() const;

  /// Row-major stride of `axis`.
  [[nodiscard]] std::int64_t Stride(std::size_t axis) const;

  [[nodiscard]] bool operator==(const Shape& other) const = default;

  /// "[2, 3, 224, 224]"
  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace ccperf
