#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/threading.h"
#include "tensor/kernel_tile.h"

#if defined(__GNUC__) || defined(__clang__)
#define CCPERF_GEMM_RESTRICT __restrict__
#else
#define CCPERF_GEMM_RESTRICT
#endif

namespace ccperf {

namespace {

// Blocked kernel tile geometry — shared with the sparse kernel TU so packed
// B panels have the same ISA-sized width in both (see kernel_tile.h).
using kernel::kKc;
using kernel::kMr;
using kernel::kNc;
using kernel::kNr;

// Row panels assigned per task in the reference kernel; each C row stays
// resident in L1 while its K-long accumulation streams over B. For very wide
// rows the j-range is blocked so the C slice still fits L1.
constexpr std::int64_t kRefBlockM = 16;
constexpr std::int64_t kRefBlockN = 4096;

void CheckGemmArgs(std::int64_t m, std::int64_t n, std::int64_t k,
                   std::span<const float> a, std::span<const float> b,
                   std::span<float> c) {
  CCPERF_CHECK(m >= 0 && n >= 0 && k >= 0, "negative GEMM extent");
  CCPERF_CHECK(static_cast<std::int64_t>(a.size()) == m * k, "A size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(b.size()) == k * n, "B size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(c.size()) == m * n, "C size mismatch");
}

// Register tile: acc[kMr][kNr] += A_panel[kc x kMr] * B_panel[kc x kNr],
// then the valid mv x nv corner is written back to C — overwriting on the
// first K block, accumulating on later ones. Tail lanes beyond mv/nv operate
// on packed zero padding and are never written back, so every C element sees
// the exact same ascending-k accumulation order regardless of tile
// alignment, chunk boundaries, or pool size (bitwise-deterministic output).
void MicroKernel(std::int64_t kc, const float* CCPERF_GEMM_RESTRICT ap,
                 const float* CCPERF_GEMM_RESTRICT bp,
                 float* CCPERF_GEMM_RESTRICT c, std::int64_t ldc,
                 std::int64_t mv, std::int64_t nv, bool first) {
  float acc[kMr][kNr] = {};
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const float* CCPERF_GEMM_RESTRICT brow = bp + kk * kNr;
    const float* CCPERF_GEMM_RESTRICT arow = ap + kk * kMr;
    for (std::int64_t r = 0; r < kMr; ++r) {
      const float av = arow[r];
      for (std::int64_t j = 0; j < kNr; ++j) {
        acc[r][j] += av * brow[j];
      }
    }
  }
  if (mv == kMr && nv == kNr) {
    for (std::int64_t r = 0; r < kMr; ++r) {
      float* CCPERF_GEMM_RESTRICT crow = c + r * ldc;
      if (first) {
        for (std::int64_t j = 0; j < kNr; ++j) crow[j] = acc[r][j];
      } else {
        for (std::int64_t j = 0; j < kNr; ++j) crow[j] += acc[r][j];
      }
    }
  } else {
    for (std::int64_t r = 0; r < mv; ++r) {
      float* crow = c + r * ldc;
      if (first) {
        for (std::int64_t j = 0; j < nv; ++j) crow[j] = acc[r][j];
      } else {
        for (std::int64_t j = 0; j < nv; ++j) crow[j] += acc[r][j];
      }
    }
  }
}

// Multiply rows [row_lo, row_hi) of A into C (reference kernel body).
void GemmRowPanel(std::int64_t row_lo, std::int64_t row_hi, std::int64_t n,
                  std::int64_t k, const float* a, const float* b, float* c) {
  for (std::int64_t i = row_lo; i < row_hi; ++i) {
    float* crow = c + i * n;
    std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
    const float* arow = a + i * k;
    for (std::int64_t j0 = 0; j0 < n; j0 += kRefBlockN) {
      const std::int64_t j1 = std::min(n, j0 + kRefBlockN);
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0f) continue;  // free win on sparse-ish panels
        const float* brow = b + kk * n;
        for (std::int64_t j = j0; j < j1; ++j) {
          crow[j] += aik * brow[j];
        }
      }
    }
  }
}

}  // namespace

PackedA PackA(std::int64_t m, std::int64_t k, std::span<const float> a) {
  CCPERF_CHECK(m >= 0 && k >= 0, "negative GEMM extent");
  CCPERF_CHECK(static_cast<std::int64_t>(a.size()) == m * k, "A size mismatch");
  PackedA packed;
  packed.m_ = m;
  packed.k_ = k;
  if (m == 0 || k == 0) return packed;
  const std::int64_t panels = (m + kMr - 1) / kMr;
  packed.data_.assign(static_cast<std::size_t>(panels * kMr * k), 0.0f);
  const float* src = a.data();
  float* dst = packed.data_.data();
  for (std::int64_t pc = 0; pc < k; pc += kKc) {
    const std::int64_t kc_eff = std::min(kKc, k - pc);
    float* block = dst + panels * kMr * pc;
    for (std::int64_t i = 0; i < panels; ++i) {
      float* panel = block + i * kMr * kc_eff;
      const std::int64_t mv = std::min(kMr, m - i * kMr);
      for (std::int64_t r = 0; r < mv; ++r) {
        const float* arow = src + (i * kMr + r) * k + pc;
        for (std::int64_t kk = 0; kk < kc_eff; ++kk) {
          panel[kk * kMr + r] = arow[kk];
        }
      }
      // Tail rows mv..kMr stay zero from assign(); they multiply into
      // accumulator lanes the write-back discards.
    }
  }
  return packed;
}

void FlipPackedBit(PackedA& a, std::int64_t row, std::int64_t k, int bit) {
  CCPERF_CHECK(row >= 0 && row < a.m_ && k >= 0 && k < a.k_,
               "packed element (", row, ", ", k, ") out of range");
  CCPERF_CHECK(bit >= 0 && bit <= 31, "bit must be in [0, 31], got ", bit);
  // Mirror of the PackA layout arithmetic: element (row, k) of the K block
  // at pc sits at panels*kMr*pc + panel*kMr*kc_eff + kk*kMr + r.
  const std::int64_t panels = (a.m_ + kMr - 1) / kMr;
  const std::int64_t pc = (k / kKc) * kKc;
  const std::int64_t kk = k - pc;
  const std::int64_t kc_eff = std::min(kKc, a.k_ - pc);
  const std::int64_t offset = panels * kMr * pc +
                              (row / kMr) * kMr * kc_eff + kk * kMr +
                              row % kMr;
  float& value = a.data_[static_cast<std::size_t>(offset)];
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  bits ^= 1u << static_cast<unsigned>(bit);
  std::memcpy(&value, &bits, sizeof(bits));
}

void GemmPacked(const PackedA& a, std::int64_t n, std::span<const float> b,
                std::span<float> c) {
  const std::int64_t m = a.m_;
  const std::int64_t k = a.k_;
  CCPERF_CHECK(n >= 0, "negative GEMM extent");
  CCPERF_CHECK(static_cast<std::int64_t>(b.size()) == k * n, "B size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(c.size()) == m * n, "C size mismatch");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::fill(c.begin(), c.end(), 0.0f);
    return;
  }
  const std::int64_t panels = (m + kMr - 1) / kMr;
  const float* pa = a.data_.data();
  const float* bsrc = b.data();
  float* cp = c.data();

  const std::int64_t max_npanels =
      (std::min(n, kNc) + kNr - 1) / kNr;
  std::vector<float> bpack(
      static_cast<std::size_t>(max_npanels * kNr * std::min(k, kKc)));
  float* bpk = bpack.data();

  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t nc_eff = std::min(kNc, n - jc);
    const std::int64_t npanels = (nc_eff + kNr - 1) / kNr;
    for (std::int64_t pc = 0; pc < k; pc += kKc) {
      const std::int64_t kc_eff = std::min(kKc, k - pc);
      // Pack B[pc:pc+kc, jc:jc+nc] into kNr-wide column panels so the
      // microkernel reads B contiguously; tail columns are zero-padded.
      for (std::int64_t jp = 0; jp < npanels; ++jp) {
        float* panel = bpk + jp * kNr * kc_eff;
        const std::int64_t j0 = jc + jp * kNr;
        const std::int64_t nv = std::min(kNr, n - j0);
        for (std::int64_t kk = 0; kk < kc_eff; ++kk) {
          const float* srow = bsrc + (pc + kk) * n + j0;
          float* drow = panel + kk * kNr;
          std::int64_t j = 0;
          for (; j < nv; ++j) drow[j] = srow[j];
          for (; j < kNr; ++j) drow[j] = 0.0f;
        }
      }
      const float* pa_block = pa + panels * kMr * pc;
      const bool first = pc == 0;
      // Tasks own disjoint mr-panels (disjoint C rows); bpack is read-only
      // here, so the parallel sweep is race-free and the k-accumulation
      // order of every C element is independent of the chunking.
      ParallelForChunks(
          0, static_cast<std::size_t>(panels),
          [=](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
              const std::int64_t row0 = static_cast<std::int64_t>(i) * kMr;
              const float* ap = pa_block + row0 * kc_eff;
              const std::int64_t mv = std::min(kMr, m - row0);
              float* crow = cp + row0 * n + jc;
              for (std::int64_t jp = 0; jp < npanels; ++jp) {
                const std::int64_t nv = std::min(kNr, nc_eff - jp * kNr);
                MicroKernel(kc_eff, ap, bpk + jp * kNr * kc_eff,
                            crow + jp * kNr, n, mv, nv, first);
              }
            }
          },
          1);
    }
  }
}

void Gemm(std::int64_t m, std::int64_t n, std::int64_t k,
          std::span<const float> a, std::span<const float> b,
          std::span<float> c) {
  CheckGemmArgs(m, n, k, a, b, c);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::fill(c.begin(), c.end(), 0.0f);
    return;
  }
  GemmPacked(PackA(m, k, a), n, b, c);
}

void GemmReference(std::int64_t m, std::int64_t n, std::int64_t k,
                   std::span<const float> a, std::span<const float> b,
                   std::span<float> c) {
  CheckGemmArgs(m, n, k, a, b, c);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::fill(c.begin(), c.end(), 0.0f);
    return;
  }
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  ParallelForChunks(
      0, static_cast<std::size_t>(m),
      [=](std::size_t lo, std::size_t hi) {
        GemmRowPanel(static_cast<std::int64_t>(lo),
                     static_cast<std::int64_t>(hi), n, k, ap, bp, cp);
      },
      static_cast<std::size_t>(kRefBlockM));
}

void NaiveGemm(std::int64_t m, std::int64_t n, std::int64_t k,
               std::span<const float> a, std::span<const float> b,
               std::span<float> c) {
  CheckGemmArgs(m, n, k, a, b, c);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += a[static_cast<std::size_t>(i * k + kk)] *
               b[static_cast<std::size_t>(kk * n + j)];
      }
      c[static_cast<std::size_t>(i * n + j)] = acc;
    }
  }
}

void Gemv(std::int64_t m, std::int64_t k, std::span<const float> a,
          std::span<const float> x, std::span<float> y) {
  CCPERF_CHECK(static_cast<std::int64_t>(a.size()) == m * k, "A size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(x.size()) == k, "x size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(y.size()) == m, "y size mismatch");
  const float* ap = a.data();
  const float* xp = x.data();
  float* yp = y.data();
  ParallelForChunks(
      0, static_cast<std::size_t>(m),
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const float* row = ap + static_cast<std::int64_t>(i) * k;
          float acc = 0.0f;
          for (std::int64_t kk = 0; kk < k; ++kk) acc += row[kk] * xp[kk];
          yp[i] = acc;
        }
      },
      64);
}

}  // namespace ccperf
