#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/threading.h"

namespace ccperf {

namespace {
// Row panels assigned per task; each C row stays resident in L1 while its
// K-long accumulation streams over B. For very wide rows the j-range is
// blocked so the C slice still fits L1.
constexpr std::int64_t kBlockM = 16;
constexpr std::int64_t kBlockN = 4096;

void CheckGemmArgs(std::int64_t m, std::int64_t n, std::int64_t k,
                   std::span<const float> a, std::span<const float> b,
                   std::span<float> c) {
  CCPERF_CHECK(m >= 0 && n >= 0 && k >= 0, "negative GEMM extent");
  CCPERF_CHECK(static_cast<std::int64_t>(a.size()) == m * k, "A size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(b.size()) == k * n, "B size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(c.size()) == m * n, "C size mismatch");
}

// Multiply rows [row_lo, row_hi) of A into C.
void GemmRowPanel(std::int64_t row_lo, std::int64_t row_hi, std::int64_t n,
                  std::int64_t k, const float* a, const float* b, float* c) {
  for (std::int64_t i = row_lo; i < row_hi; ++i) {
    float* crow = c + i * n;
    std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
    const float* arow = a + i * k;
    for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
      const std::int64_t j1 = std::min(n, j0 + kBlockN);
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0f) continue;  // free win on sparse-ish panels
        const float* brow = b + kk * n;
        for (std::int64_t j = j0; j < j1; ++j) {
          crow[j] += aik * brow[j];
        }
      }
    }
  }
}
}  // namespace

void Gemm(std::int64_t m, std::int64_t n, std::int64_t k,
          std::span<const float> a, std::span<const float> b,
          std::span<float> c) {
  CheckGemmArgs(m, n, k, a, b, c);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::fill(c.begin(), c.end(), 0.0f);
    return;
  }
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  ParallelForChunks(
      0, static_cast<std::size_t>(m),
      [=](std::size_t lo, std::size_t hi) {
        GemmRowPanel(static_cast<std::int64_t>(lo),
                     static_cast<std::int64_t>(hi), n, k, ap, bp, cp);
      },
      static_cast<std::size_t>(kBlockM));
}

void NaiveGemm(std::int64_t m, std::int64_t n, std::int64_t k,
               std::span<const float> a, std::span<const float> b,
               std::span<float> c) {
  CheckGemmArgs(m, n, k, a, b, c);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += a[static_cast<std::size_t>(i * k + kk)] *
               b[static_cast<std::size_t>(kk * n + j)];
      }
      c[static_cast<std::size_t>(i * n + j)] = acc;
    }
  }
}

void Gemv(std::int64_t m, std::int64_t k, std::span<const float> a,
          std::span<const float> x, std::span<float> y) {
  CCPERF_CHECK(static_cast<std::int64_t>(a.size()) == m * k, "A size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(x.size()) == k, "x size mismatch");
  CCPERF_CHECK(static_cast<std::int64_t>(y.size()) == m, "y size mismatch");
  const float* ap = a.data();
  const float* xp = x.data();
  float* yp = y.data();
  ParallelForChunks(
      0, static_cast<std::size_t>(m),
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const float* row = ap + static_cast<std::int64_t>(i) * k;
          float acc = 0.0f;
          for (std::int64_t kk = 0; kk < k; ++kk) acc += row[kk] * xp[kk];
          yp[i] = acc;
        }
      },
      64);
}

}  // namespace ccperf
