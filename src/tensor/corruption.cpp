#include "tensor/corruption.h"

#include <cstring>

#include "common/check.h"

namespace ccperf {

namespace {

void FlipFloatBit(float& value, int bit) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  bits ^= 1u << static_cast<unsigned>(bit);
  std::memcpy(&value, &bits, sizeof(bits));
}

}  // namespace

CorruptionInjector::CorruptionInjector(std::uint64_t seed, int bit_lo,
                                       int bit_hi)
    : rng_(seed), bit_lo_(bit_lo), bit_hi_(bit_hi) {
  CCPERF_CHECK(bit_lo >= 0 && bit_hi <= 31 && bit_lo <= bit_hi,
               "bit range must satisfy 0 <= lo <= hi <= 31, got [", bit_lo,
               ", ", bit_hi, "]");
}

int CorruptionInjector::NextBit() {
  return bit_lo_ + static_cast<int>(rng_.NextIndex(
                       static_cast<std::uint64_t>(bit_hi_ - bit_lo_ + 1)));
}

BitFlip CorruptionInjector::CorruptOutput(std::span<float> c, std::int64_t m,
                                          std::int64_t n) {
  CCPERF_CHECK(m >= 1 && n >= 1, "need a non-empty output to corrupt");
  CCPERF_CHECK(static_cast<std::int64_t>(c.size()) == m * n,
               "C size mismatch");
  BitFlip flip;
  flip.row = static_cast<std::int64_t>(
      rng_.NextIndex(static_cast<std::uint64_t>(m)));
  flip.col = static_cast<std::int64_t>(
      rng_.NextIndex(static_cast<std::uint64_t>(n)));
  flip.bit = NextBit();
  FlipFloatBit(c[static_cast<std::size_t>(flip.row * n + flip.col)], flip.bit);
  return flip;
}

BitFlip CorruptionInjector::CorruptFloats(std::span<float> data) {
  CCPERF_CHECK(!data.empty(), "need a non-empty buffer to corrupt");
  BitFlip flip;
  flip.row = static_cast<std::int64_t>(rng_.NextIndex(data.size()));
  flip.col = 0;
  flip.bit = NextBit();
  FlipFloatBit(data[static_cast<std::size_t>(flip.row)], flip.bit);
  return flip;
}

BitFlip CorruptionInjector::CorruptWeights(PackedA& a) {
  CCPERF_CHECK(a.M() >= 1 && a.K() >= 1, "need a non-empty pack to corrupt");
  BitFlip flip;
  flip.row = static_cast<std::int64_t>(
      rng_.NextIndex(static_cast<std::uint64_t>(a.M())));
  flip.col = static_cast<std::int64_t>(
      rng_.NextIndex(static_cast<std::uint64_t>(a.K())));
  flip.bit = NextBit();
  FlipPackedBit(a, flip.row, flip.col, flip.bit);
  return flip;
}

BitFlip CorruptionInjector::CorruptWeights(AbftPackedA& a) {
  CCPERF_CHECK(a.M() >= 1 && a.K() >= 1, "need a non-empty pack to corrupt");
  // Strike only the weight rows, never row M (the checksum row): corrupting
  // the checksum itself is also detected, but it is the less interesting
  // direction and would double-count in coverage sweeps.
  BitFlip flip;
  flip.row = static_cast<std::int64_t>(
      rng_.NextIndex(static_cast<std::uint64_t>(a.M())));
  flip.col = static_cast<std::int64_t>(
      rng_.NextIndex(static_cast<std::uint64_t>(a.K())));
  flip.bit = NextBit();
  FlipPackedBit(a.aug_, flip.row, flip.col, flip.bit);
  return flip;
}

BitFlip CorruptionInjector::CorruptWeights(QuantizedPackedA& a) {
  CCPERF_CHECK(a.M() >= 1 && a.K() >= 1, "need a non-empty pack to corrupt");
  BitFlip flip;
  flip.row = static_cast<std::int64_t>(
      rng_.NextIndex(static_cast<std::uint64_t>(a.M())));
  flip.col = static_cast<std::int64_t>(
      rng_.NextIndex(static_cast<std::uint64_t>(a.K())));
  flip.bit = static_cast<int>(rng_.NextIndex(8));
  FlipQuantizedBit(a, flip.row, flip.col, flip.bit);
  return flip;
}

}  // namespace ccperf
