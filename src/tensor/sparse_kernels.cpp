// Vectorized sparse x dense multiply kernels (see sparse_kernels.h).
//
// Both kernels follow the blocked GEMM's playbook: pack B[k, jc:jc+nc] into
// kNr-wide column panels (k-major within a panel, zero-padded tails) so the
// inner loops read B contiguously and auto-vectorize, then sweep sparse
// rows with the per-panel accumulator held in registers. The CSR kernel
// keeps one kNr-wide accumulator per C row; the BSR kernel keeps a
// kBlockRows x kNr tile and reuses every packed-B row across the block's
// rows, which is what moves its dense crossover above CSR's. Like
// gemm.cpp, this TU alone is compiled with CCPERF_KERNEL_FLAGS; the loops
// are plain C with __restrict__, so without the ISA flags they degrade to
// the portable scalar schedule instead of breaking the build.
#include "tensor/sparse_kernels.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/threading.h"
#include "tensor/kernel_tile.h"
#include "tensor/sparse.h"

#if defined(__GNUC__) || defined(__clang__)
#define CCPERF_SPMM_RESTRICT __restrict__
#else
#define CCPERF_SPMM_RESTRICT
#endif

namespace ccperf::detail {

namespace {

using kernel::kNc;
using kernel::kNr;

constexpr std::int64_t kBr = BsrMatrix::kBlockRows;
constexpr std::int64_t kBc = BsrMatrix::kBlockCols;

// Pack B[0:k, jc:jc+nc] into kNr-wide column panels: panel jp holds columns
// [jc + jp*kNr, jc + (jp+1)*kNr) for all k rows, element (kk, j) at
// jp*kNr*k_pad + kk*kNr + j. Rows k..k_pad and columns past n are zero —
// the BSR kernel reads whole kBc-row groups, so its k extent is padded up
// to a block multiple. Unlike the dense GEMM there is no kc blocking: a
// sparse row visits only its nnz B rows, so the panel working set in play
// is proportional to nnz, not k.
void PackBPanels(const float* CCPERF_SPMM_RESTRICT b, std::int64_t k,
                 std::int64_t k_pad, std::int64_t n, std::int64_t jc,
                 std::int64_t nc, float* CCPERF_SPMM_RESTRICT out) {
  const std::int64_t npanels = (nc + kNr - 1) / kNr;
  ParallelForChunks(
      0, static_cast<std::size_t>(npanels),
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t jp = lo; jp < hi; ++jp) {
          float* panel = out + static_cast<std::int64_t>(jp) * kNr * k_pad;
          const std::int64_t j0 = jc + static_cast<std::int64_t>(jp) * kNr;
          const std::int64_t nv = std::min<std::int64_t>(kNr, jc + nc - j0);
          for (std::int64_t kk = 0; kk < k; ++kk) {
            const float* srow = b + kk * n + j0;
            float* drow = panel + kk * kNr;
            std::int64_t j = 0;
            for (; j < nv; ++j) drow[j] = srow[j];
            for (; j < kNr; ++j) drow[j] = 0.0f;
          }
          if (k_pad > k) {
            std::memset(panel + k * kNr, 0,
                        static_cast<std::size_t>((k_pad - k) * kNr) *
                            sizeof(float));
          }
        }
      },
      1);
}

}  // namespace

void SpmmCsr(std::int64_t rows, std::int64_t cols, std::int64_t n,
             const std::int64_t* row_ptr, const std::int32_t* col_idx,
             const float* values, const float* b, float* c) {
  if (rows == 0 || n == 0) return;
  const std::int64_t max_nc = std::min(n, kNc);
  const std::int64_t max_npanels = (max_nc + kNr - 1) / kNr;
  std::vector<float> bpack(
      static_cast<std::size_t>(max_npanels * kNr * std::max<std::int64_t>(
                                                       cols, 1)));
  float* bpk = bpack.data();
  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t nc = std::min(kNc, n - jc);
    const std::int64_t npanels = (nc + kNr - 1) / kNr;
    PackBPanels(b, cols, cols, n, jc, nc, bpk);
    // Panel-outer within each row block: a kNr-wide panel spans
    // kNr * cols floats (~150 KiB on AVX-512 for conv2), so sweeping every
    // panel per row would stream the whole packed B from L3 once per row.
    // Holding one panel L2-resident while a block of rows reuses it cuts
    // the packed-B traffic by the row-block factor.
    ParallelForChunks(
        0, static_cast<std::size_t>(rows),
        [=](std::size_t lo, std::size_t hi) {
          for (std::int64_t jp = 0; jp < npanels; ++jp) {
            const float* CCPERF_SPMM_RESTRICT panel = bpk + jp * kNr * cols;
            for (std::size_t r = lo; r < hi; ++r) {
              const std::int64_t p0 = row_ptr[r];
              const std::int64_t p1 = row_ptr[r + 1];
              float* crow = c + static_cast<std::int64_t>(r) * n + jc;
              // Four partial accumulators per lane: a single acc vector
              // would serialize one FMA-latency per nonzero, capping the
              // kernel far below the load/FMA ports. The nonzeros are
              // dealt round-robin and the partials summed in a fixed tree,
              // so the per-element order is still schedule-independent.
              float acc0[kNr] = {}, acc1[kNr] = {};
              float acc2[kNr] = {}, acc3[kNr] = {};
              std::int64_t p = p0;
              for (; p + 3 < p1; p += 4) {
                const float v0 = values[p];
                const float v1 = values[p + 1];
                const float v2 = values[p + 2];
                const float v3 = values[p + 3];
                const float* CCPERF_SPMM_RESTRICT b0 =
                    panel + static_cast<std::int64_t>(col_idx[p]) * kNr;
                const float* CCPERF_SPMM_RESTRICT b1 =
                    panel + static_cast<std::int64_t>(col_idx[p + 1]) * kNr;
                const float* CCPERF_SPMM_RESTRICT b2 =
                    panel + static_cast<std::int64_t>(col_idx[p + 2]) * kNr;
                const float* CCPERF_SPMM_RESTRICT b3 =
                    panel + static_cast<std::int64_t>(col_idx[p + 3]) * kNr;
                for (std::int64_t j = 0; j < kNr; ++j) acc0[j] += v0 * b0[j];
                for (std::int64_t j = 0; j < kNr; ++j) acc1[j] += v1 * b1[j];
                for (std::int64_t j = 0; j < kNr; ++j) acc2[j] += v2 * b2[j];
                for (std::int64_t j = 0; j < kNr; ++j) acc3[j] += v3 * b3[j];
              }
              for (; p < p1; ++p) {
                const float v = values[p];
                const float* CCPERF_SPMM_RESTRICT brow =
                    panel + static_cast<std::int64_t>(col_idx[p]) * kNr;
                for (std::int64_t j = 0; j < kNr; ++j) acc0[j] += v * brow[j];
              }
              // Unconditional write-back overwrites C and zeroes empty rows.
              const std::int64_t nv = std::min(kNr, nc - jp * kNr);
              float* cj = crow + jp * kNr;
              for (std::int64_t j = 0; j < nv; ++j) {
                cj[j] = (acc0[j] + acc1[j]) + (acc2[j] + acc3[j]);
              }
            }
          }
        },
        32);
  }
}

void SpmmBsr(std::int64_t rows, std::int64_t cols, std::int64_t n,
             std::int64_t block_rows, const std::int64_t* row_ptr,
             const std::int32_t* col_idx, const float* values, const float* b,
             float* c) {
  if (rows == 0 || n == 0) return;
  // Pad packed K up to a block multiple so a tail block can read its full
  // kBc rows; the padding rows are zero and the matching block values are
  // zero-padded too, so the extra FMAs cannot change any sum.
  const std::int64_t k_pad = (cols + kBc - 1) / kBc * kBc;
  const std::int64_t max_nc = std::min(n, kNc);
  const std::int64_t max_npanels = (max_nc + kNr - 1) / kNr;
  std::vector<float> bpack(
      static_cast<std::size_t>(max_npanels * kNr * std::max<std::int64_t>(
                                                       k_pad, 1)));
  float* bpk = bpack.data();
  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t nc = std::min(kNc, n - jc);
    const std::int64_t npanels = (nc + kNr - 1) / kNr;
    PackBPanels(b, cols, k_pad, n, jc, nc, bpk);
    // Same panel-outer blocking rationale as SpmmCsr: keep one packed panel
    // hot in L2 while a block of block-rows consumes it.
    ParallelForChunks(
        0, static_cast<std::size_t>(block_rows),
        [=](std::size_t lo, std::size_t hi) {
          for (std::int64_t jp = 0; jp < npanels; ++jp) {
            const float* CCPERF_SPMM_RESTRICT panel = bpk + jp * kNr * k_pad;
            for (std::size_t ib = lo; ib < hi; ++ib) {
              const std::int64_t row0 = static_cast<std::int64_t>(ib) * kBr;
              const std::int64_t mv = std::min(kBr, rows - row0);
              const std::int64_t p0 = row_ptr[ib];
              const std::int64_t p1 = row_ptr[ib + 1];
              // One j-loop per packed-B row: brow[j] is loaded once and
              // feeds all four row accumulators, giving a 1:4 load:FMA
              // ratio and four independent chains per lane group. The four
              // rows of C accumulate independently, and each still sees
              // its blocks in ascending block-column order.
              float acc0[kNr] = {}, acc1[kNr] = {};
              float acc2[kNr] = {}, acc3[kNr] = {};
              static_assert(kBr == 4 && kBc == 4,
                            "BSR inner loop is unrolled for 4x4 blocks");
              for (std::int64_t p = p0; p < p1; ++p) {
                const float* CCPERF_SPMM_RESTRICT blk = values + p * kBr * kBc;
                const float* CCPERF_SPMM_RESTRICT bpanel =
                    panel + static_cast<std::int64_t>(col_idx[p]) * kBc * kNr;
                for (std::int64_t cc = 0; cc < kBc; ++cc) {
                  const float* CCPERF_SPMM_RESTRICT brow = bpanel + cc * kNr;
                  const float v0 = blk[0 * kBc + cc];
                  const float v1 = blk[1 * kBc + cc];
                  const float v2 = blk[2 * kBc + cc];
                  const float v3 = blk[3 * kBc + cc];
                  for (std::int64_t j = 0; j < kNr; ++j) {
                    const float bv = brow[j];
                    acc0[j] += v0 * bv;
                    acc1[j] += v1 * bv;
                    acc2[j] += v2 * bv;
                    acc3[j] += v3 * bv;
                  }
                }
              }
              const float* CCPERF_SPMM_RESTRICT accs[kBr] = {acc0, acc1, acc2,
                                                             acc3};
              const std::int64_t nv = std::min(kNr, nc - jp * kNr);
              for (std::int64_t r = 0; r < mv; ++r) {
                float* cj = c + (row0 + r) * n + jc + jp * kNr;
                for (std::int64_t j = 0; j < nv; ++j) cj[j] = accs[r][j];
              }
            }
          }
        },
        8);
  }
}

}  // namespace ccperf::detail
