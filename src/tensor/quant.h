// Int8 quantized GEMM path: per-channel-scale symmetric weight quantization
// hooked into the blocked GEMM's pack step, an int32-accumulate microkernel,
// and a fused dequant+bias+ReLU epilogue.
//
// Scheme (DESIGN.md §12): weights (the A operand) are quantized per output
// channel — row i gets scale s_i = max|row_i| / 127 and stores
// q = round(w / s_i) in [-127, 127]; activations (B) get one per-tensor
// scale s_b = max|B| / 127 computed fresh each call. Accumulation is exact
// int32 (no saturation, no reordering sensitivity — int32 sums are
// associative), so the quantized path is bitwise deterministic regardless
// of blocking or pool size, and GemmInt8 == NaiveGemmInt8 bitwise. The only
// approximation versus float is the quantization itself, which the
// differential tests bound per element from the scales:
//   |c_q - c_f| <= s_i/2 * sum_k|b_kj| + s_b/2 * sum_k|a_ik| + K * s_i*s_b/4.
//
// Non-finite activations saturate at the quantize boundary: NaN -> 0,
// +/-Inf -> +/-127 (and are ignored when computing the activation scale).
// This is a deliberate serving-oriented semantic — a poisoned activation
// cannot poison the whole output tile — and is pinned by tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/abft.h"

namespace ccperf {

/// Deepest K an int8 GEMM may accumulate before int32 could overflow.
/// The VNNI kernel biases activations to unsigned (q_b + 128) and corrects
/// with -128 * sum(q_a), so the worst intermediate value is
/// |sum_done(a*b) - 128 * sum_rest(a)| <= K * 127 * (127 + 128) = K*127*255;
/// that must stay below 2^31 - 1. The bound is ISA-independent on purpose
/// (every build rejects the same shapes). Table 1's deepest GEMM (fc6,
/// K = 9216) is ~7x below the bound; GemmInt8 enforces it with a hard
/// check.
inline constexpr std::int64_t kInt8MaxDepth = 2147483647LL / (127LL * 255LL);

/// A[M,K] quantized to int8 per row (per output channel) and repacked into
/// the blocked kernel's panel layout (mr-row panels, k-group-major with
/// zero-padded tails). The quantization grid is always 8-bit; the stored
/// element width is an ISA detail of quant.cpp — int8 quads feeding the
/// VNNI byte dot-product units, int16 pairs for the vpmaddwd/scalar paths.
/// The layout is an implementation detail of quant.cpp; treat instances as
/// opaque. Build once per weight matrix and reuse across GemmInt8 calls
/// while the weights are unchanged (the conv/fc layers cache it and rebuild
/// in NotifyWeightsChanged).
class QuantizedPackedA {
 public:
  // Special members are defined out-of-line in quant.cpp: an implicit
  // inline destructor would be emitted as a weak symbol by every including
  // TU *and* by the -march=native kernel TU, which is exactly the ODR /
  // ISA-leak class scripts/check_kernel_odr.sh rejects.
  QuantizedPackedA();
  ~QuantizedPackedA();
  QuantizedPackedA(const QuantizedPackedA&);
  QuantizedPackedA& operator=(const QuantizedPackedA&);
  QuantizedPackedA(QuantizedPackedA&&) noexcept;
  QuantizedPackedA& operator=(QuantizedPackedA&&) noexcept;

  [[nodiscard]] std::int64_t M() const { return m_; }
  [[nodiscard]] std::int64_t K() const { return k_; }
  /// True for a default-constructed instance holding no matrix.
  [[nodiscard]] bool Empty() const { return m_ == 0 && k_ == 0; }
  /// Per-row (per output channel) dequantization scales, size M. A row of
  /// exact zeros has scale 0 — its quantized values are all zero and the
  /// epilogue multiplies the accumulator by 0 (the scale-0 guard).
  [[nodiscard]] std::span<const float> RowScales() const { return scales_; }
  /// Bytes the packed int8 representation occupies (panels + scales).
  [[nodiscard]] std::int64_t PackedBytes() const;

 private:
  friend QuantizedPackedA QuantizePackA(std::int64_t m, std::int64_t k,
                                        std::span<const float> a);
  friend void GemmInt8(const QuantizedPackedA& a, std::int64_t n,
                       std::span<const float> b, std::span<float> c,
                       const struct Int8Epilogue& epilogue);
  friend AbftCheck GemmInt8Abft(const QuantizedPackedA& a, std::int64_t n,
                                std::span<const float> b, std::span<float> c,
                                const struct Int8Epilogue& epilogue);
  friend AbftCheck GemmInt8AbftCorruptForTest(
      const QuantizedPackedA& a, std::int64_t n, std::span<const float> b,
      std::span<float> c, const struct Int8Epilogue& epilogue,
      std::int64_t element, int bit);
  friend void FlipQuantizedBit(QuantizedPackedA& a, std::int64_t row,
                               std::int64_t k, int bit);

  std::int64_t m_ = 0;
  std::int64_t k_ = 0;
  std::vector<std::int16_t> data_;  // [k-block][mr-panel][k-group][mr][group]
  std::vector<float> scales_;       // [m]
  // Per-row sum of the quantized weights, used by the VNNI kernel's
  // unsigned-activation offset correction (exact int32; see quant.cpp).
  std::vector<std::int32_t> rowsums_;  // [m]
  // Per-K-step column sum of the quantized weights over the valid rows —
  // the ABFT reference: the exact int32 image must satisfy
  // sum_i c32_ij = sum_k colsums_[k] * qb_kj (see GemmInt8Abft).
  std::vector<std::int32_t> colsums_;  // [k]
};

/// Fused epilogue applied while the int32 accumulators are dequantized:
/// c = acc * (row_scale * b_scale) [+ bias_row] [then max(0, c)].
struct Int8Epilogue {
  /// Per-row bias (size M) added after dequantization; empty = no bias.
  std::span<const float> bias = {};
  /// Clamp negative outputs to zero (fused ReLU).
  bool relu = false;
};

/// Quantize and repack row-major A[M,K] for GemmInt8 (the weight-stationary
/// pack step; per-row symmetric scales).
QuantizedPackedA QuantizePackA(std::int64_t m, std::int64_t k,
                               std::span<const float> a);

/// Per-tensor symmetric activation scale max|b| / 127. Non-finite entries
/// are ignored; all-zero (or empty) input returns 0.
float ActivationScale(std::span<const float> b);

/// Quantize one value to the int8 grid with scale `scale` (round to
/// nearest-even, saturate to [-127, 127]; scale 0 maps everything to 0;
/// NaN -> 0, +/-Inf -> +/-127). Exposed for tests and round-trip fuzzing.
std::int8_t QuantizeToInt8(float v, float scale);

/// C[M,N] = dequant(q(A) * q(B[K,N])) with the fused epilogue, row-major,
/// C overwritten. B is quantized per call with ActivationScale. Bitwise
/// deterministic for fixed extents regardless of pool size, and bitwise
/// equal to NaiveGemmInt8 (exact int32 accumulation + a shared epilogue).
void GemmInt8(const QuantizedPackedA& a, std::int64_t n,
              std::span<const float> b, std::span<float> c,
              const Int8Epilogue& epilogue = {});

/// Convenience: quantize-pack A on the fly and run GemmInt8.
void GemmInt8(std::int64_t m, std::int64_t n, std::int64_t k,
              std::span<const float> a, std::span<const float> b,
              std::span<float> c, const Int8Epilogue& epilogue = {});

/// GemmInt8 with ABFT verification of the exact int32 accumulator image
/// before the epilogue runs: per column j, sum_i c32_ij must equal
/// sum_k colsum_k * qb_kj where colsum_k was stored at pack time and qb is
/// the call's own re-quantization of B (bitwise-identical decisions to the
/// kernel's pack). Integer equality — no tolerance, so ANY flipped bit in
/// the packed weights or the accumulator image is detected, and the fused
/// ReLU stays fused (verification happens pre-epilogue, where the checksum
/// is still linear). AbftCheck::max_ratio reports the max absolute integer
/// residual. C is fully written even on failure.
AbftCheck GemmInt8Abft(const QuantizedPackedA& a, std::int64_t n,
                       std::span<const float> b, std::span<float> c,
                       const Int8Epilogue& epilogue = {});

/// Test hook: GemmInt8Abft with bit `bit` (0..31) of int32 accumulator
/// element `element` flipped between the kernel and verification — the
/// output-corruption direction of the differential coverage sweep, which
/// has no external window in the fused path.
AbftCheck GemmInt8AbftCorruptForTest(const QuantizedPackedA& a,
                                     std::int64_t n, std::span<const float> b,
                                     std::span<float> c,
                                     const Int8Epilogue& epilogue,
                                     std::int64_t element, int bit);

/// Flip bit `bit` (0..7, the int8 grid) of the packed quantized copy of
/// element (row, k) — the SDC injection hook (tensor/corruption.h). The
/// stored row/column sums are left stale on purpose. Lives in the kernel
/// TU because only it knows the (ISA-dependent) packed layout.
void FlipQuantizedBit(QuantizedPackedA& a, std::int64_t row, std::int64_t k,
                      int bit);

/// Ground-truth int8 path (tests only; no blocking, no threading): same
/// quantization decisions, plain int32 triple loop, same epilogue helper.
/// Must agree with GemmInt8 bitwise — the differential harness's oracle.
void NaiveGemmInt8(std::int64_t m, std::int64_t n, std::int64_t k,
                   std::span<const float> a, std::span<const float> b,
                   std::span<float> c, const Int8Epilogue& epilogue = {});

}  // namespace ccperf
