// Dense matrix multiply kernels.
//
// Gemm computes C = A * B for row-major matrices, register-blocked and
// parallelized over row panels via the global thread pool. NaiveGemm is the
// O(MNK) triple loop used as the correctness oracle in tests.
#pragma once

#include <cstdint>
#include <span>

namespace ccperf {

/// C[M,N] = A[M,K] * B[K,N], row-major, C overwritten.
void Gemm(std::int64_t m, std::int64_t n, std::int64_t k,
          std::span<const float> a, std::span<const float> b,
          std::span<float> c);

/// Reference implementation (tests only; no blocking, no threading).
void NaiveGemm(std::int64_t m, std::int64_t n, std::int64_t k,
               std::span<const float> a, std::span<const float> b,
               std::span<float> c);

/// y[M] = A[M,K] * x[K] + y0 (y overwritten with A*x; add bias separately).
void Gemv(std::int64_t m, std::int64_t k, std::span<const float> a,
          std::span<const float> x, std::span<float> y);

}  // namespace ccperf
