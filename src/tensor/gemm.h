// Dense matrix multiply kernels.
//
// Gemm is the public entry point: a blocked, packed, register-tiled kernel
// parallelized over row panels via the global thread pool. PackA lets
// weight-stationary callers (conv/fc layers) amortize the A-side packing
// across many multiplies. GemmReference is the previous row-panel kernel,
// kept as the fast differential-testing oracle; NaiveGemm is the O(MNK)
// triple loop used as the ground-truth reference in unit tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ccperf {

/// A[M,K] repacked into the blocked kernel's panel layout (mr-row panels,
/// k-major within a panel, zero-padded tail rows). The layout is an
/// implementation detail of gemm.cpp; treat instances as opaque. Build once
/// with PackA and reuse across GemmPacked calls while the matrix is
/// unchanged — conv and fc weights are invariant across a forward pass, so
/// the layers cache their packed weights and skip the per-call repack.
class PackedA {
 public:
  PackedA() = default;

  [[nodiscard]] std::int64_t M() const { return m_; }
  [[nodiscard]] std::int64_t K() const { return k_; }
  /// True for a default-constructed instance holding no matrix.
  [[nodiscard]] bool Empty() const { return m_ == 0 && k_ == 0; }

 private:
  friend PackedA PackA(std::int64_t m, std::int64_t k,
                       std::span<const float> a);
  friend void GemmPacked(const PackedA& a, std::int64_t n,
                         std::span<const float> b, std::span<float> c);
  friend void FlipPackedBit(PackedA& a, std::int64_t row, std::int64_t k,
                            int bit);

  std::int64_t m_ = 0;
  std::int64_t k_ = 0;
  std::vector<float> data_;  // [k-block][mr-panel][k-major, mr-contiguous]
};

/// Repack row-major A[M,K] for GemmPacked.
PackedA PackA(std::int64_t m, std::int64_t k, std::span<const float> a);

/// C[M,N] = packed_A * B[K,N], row-major, C overwritten. Bitwise
/// deterministic for fixed extents regardless of pool size: every C element
/// is accumulated in a fixed k-order by exactly one task.
void GemmPacked(const PackedA& a, std::int64_t n, std::span<const float> b,
                std::span<float> c);

/// C[M,N] = A[M,K] * B[K,N], row-major, C overwritten. Packs A on the fly
/// and runs the blocked kernel; use PackA + GemmPacked to amortize the pack.
void Gemm(std::int64_t m, std::int64_t n, std::int64_t k,
          std::span<const float> a, std::span<const float> b,
          std::span<float> c);

/// The pre-blocking row-panel kernel, kept verbatim as a second oracle for
/// the differential tests and as the baseline in bench_kernels. Note: it
/// skips A entries that compare equal to 0.0f (including -0.0f), so with
/// non-finite B values it returns 0 where IEEE arithmetic (and the packed
/// kernel, which multiplies densely) propagates NaN/Inf.
void GemmReference(std::int64_t m, std::int64_t n, std::int64_t k,
                   std::span<const float> a, std::span<const float> b,
                   std::span<float> c);

/// Ground-truth implementation (tests only; no blocking, no threading).
void NaiveGemm(std::int64_t m, std::int64_t n, std::int64_t k,
               std::span<const float> a, std::span<const float> b,
               std::span<float> c);

/// Flip bit `bit` (0..31) of the packed copy of element (row, k) — the
/// silent-data-corruption injection hook (tensor/corruption.h). Lives in
/// the kernel TU because only it knows the panel layout; (row, k) must be
/// a valid element (never the zero padding).
void FlipPackedBit(PackedA& a, std::int64_t row, std::int64_t k, int bit);

/// y[M] = A[M,K] * x[K] (y overwritten; add bias separately).
void Gemv(std::int64_t m, std::int64_t k, std::span<const float> a,
          std::span<const float> x, std::span<float> y);

}  // namespace ccperf
