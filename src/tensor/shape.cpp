#include "tensor/shape.h"

#include "common/check.h"

namespace ccperf {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (auto d : dims_) CCPERF_CHECK(d >= 0, "negative dim in shape");
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (auto d : dims_) CCPERF_CHECK(d >= 0, "negative dim in shape");
}

std::int64_t Shape::Dim(std::size_t axis) const {
  CCPERF_CHECK(axis < dims_.size(), "axis ", axis, " out of range for rank ",
               dims_.size());
  return dims_[axis];
}

std::int64_t Shape::NumElements() const {
  std::int64_t n = 1;
  for (auto d : dims_) n *= d;
  return n;
}

std::int64_t Shape::Stride(std::size_t axis) const {
  CCPERF_CHECK(axis < dims_.size(), "axis out of range");
  std::int64_t stride = 1;
  for (std::size_t a = dims_.size(); a-- > axis + 1;) stride *= dims_[a];
  return stride;
}

std::string Shape::ToString() const {
  std::string s = "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(dims_[i]);
  }
  return s + "]";
}

}  // namespace ccperf
