// Thread pool and parallel_for used by the tensor kernels.
//
// The pool is created once per process (GlobalPool) sized to the hardware
// concurrency; kernels submit index ranges and block until completion.
// On a single-core host the pool degrades gracefully to serial execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ccperf {

/// Fixed-size worker pool executing void() jobs.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  [[nodiscard]] std::size_t ThreadCount() const { return workers_.size(); }

  /// Enqueue a job for asynchronous execution.
  void Submit(std::function<void()> job);

  /// Block until every submitted job has finished.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable job_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Process-wide pool shared by all kernels.
ThreadPool& GlobalPool();

/// True when the calling thread is one of GlobalPool()'s workers. Parallel
/// loops issued from a worker run inline on that worker — they must not
/// block on the pool they are executing inside of.
[[nodiscard]] bool OnGlobalPoolWorker();

/// While alive, forces ParallelFor/ParallelForChunks issued from the
/// constructing thread to run inline (equivalent to a one-thread pool).
/// Used by determinism tests and latency-sensitive call sites.
class ScopedSerial {
 public:
  ScopedSerial();
  ~ScopedSerial();

  ScopedSerial(const ScopedSerial&) = delete;
  ScopedSerial& operator=(const ScopedSerial&) = delete;
};

/// Run fn(i) for i in [begin, end), splitting the range across the pool.
/// `grain` is the minimum number of iterations per task; ranges smaller than
/// 2*grain run serially on the calling thread. Safe to call concurrently
/// from multiple threads and from inside pool tasks (nested calls run
/// inline); each call waits only on its own chunks.
void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t grain = 64);

/// Run fn(begin, end) over contiguous chunks in parallel — cheaper than
/// per-index dispatch for tight loops. Same nesting/overlap guarantees as
/// ParallelFor.
void ParallelForChunks(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t, std::size_t)>& fn,
                       std::size_t grain = 256);

}  // namespace ccperf
