// Thread pool, parallel_for, and annotated locking primitives.
//
// The pool is created once per process (GlobalPool) sized to the hardware
// concurrency; kernels submit index ranges and block until completion.
// On a single-core host the pool degrades gracefully to serial execution.
//
// All locking in ccperf goes through the annotated Mutex/MutexLock/CondVar
// wrappers below instead of raw std::mutex, so Clang Thread Safety Analysis
// (-Wthread-safety, see annotations.h and DESIGN.md §10) can prove at
// compile time that every CCPERF_GUARDED_BY member is only touched under
// its lock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace ccperf {

/// std::mutex wrapped as a Clang thread-safety capability. Prefer MutexLock
/// over manual Lock/Unlock pairs; manual calls exist for the rare staircase
/// patterns RAII cannot express.
class CCPERF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CCPERF_ACQUIRE() { mu_.lock(); }
  void Unlock() CCPERF_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() CCPERF_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock holding a Mutex for the enclosing scope.
class CCPERF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CCPERF_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() CCPERF_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to the annotated Mutex. Every wait requires the
/// mutex held (the analysis enforces it at call sites); the lock is
/// released for the duration of the block and re-held on return, as with
/// std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Block until notified (subject to spurious wakeups — loop on a
  /// predicate or use the predicated overload).
  void Wait(Mutex& mu) CCPERF_REQUIRES(mu);

  /// Block until pred() holds.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) CCPERF_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Block until pred() holds or `timeout_s` seconds elapse; returns the
  /// final pred() value. timeout_s <= 0 evaluates pred() once.
  template <typename Pred>
  bool WaitForSeconds(Mutex& mu, double timeout_s, Pred pred)
      CCPERF_REQUIRES(mu) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(timeout_s));
    while (!pred()) {
      if (!WaitUntil(mu, deadline)) return pred();
    }
    return true;
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  /// Timed wait; false on timeout.
  bool WaitUntil(Mutex& mu,
                 std::chrono::steady_clock::time_point deadline)
      CCPERF_REQUIRES(mu);

  std::condition_variable cv_;
};

/// Deterministic error funnel for parallel loops: tasks report failures by
/// index, callers rethrow the error of the *lowest* index after the loop —
/// so the surfaced failure does not depend on thread scheduling.
class FirstErrorCollector {
 public:
  /// Keep `message` if `index` is lower than any recorded so far.
  void Record(std::size_t index, std::string message)
      CCPERF_EXCLUDES(mutex_);

  [[nodiscard]] bool HasError() const CCPERF_EXCLUDES(mutex_);

  /// Throws CheckError with the recorded message, if any.
  void RethrowIfError() const CCPERF_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::size_t index_ CCPERF_GUARDED_BY(mutex_) = SIZE_MAX;
  std::string message_ CCPERF_GUARDED_BY(mutex_);
};

/// Fixed-size worker pool executing void() jobs.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  [[nodiscard]] std::size_t ThreadCount() const { return workers_.size(); }

  /// Enqueue a job for asynchronous execution.
  void Submit(std::function<void()> job) CCPERF_EXCLUDES(mutex_);

  /// Block until every submitted job has finished.
  void Wait() CCPERF_EXCLUDES(mutex_);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;  // written before workers start
  Mutex mutex_;
  CondVar job_available_;
  CondVar all_done_;
  std::queue<std::function<void()>> jobs_ CCPERF_GUARDED_BY(mutex_);
  std::size_t in_flight_ CCPERF_GUARDED_BY(mutex_) = 0;
  bool stopping_ CCPERF_GUARDED_BY(mutex_) = false;
};

/// Process-wide pool shared by all kernels.
ThreadPool& GlobalPool();

/// True when the calling thread is one of GlobalPool()'s workers. Parallel
/// loops issued from a worker run inline on that worker — they must not
/// block on the pool they are executing inside of.
[[nodiscard]] bool OnGlobalPoolWorker();

/// While alive, forces ParallelFor/ParallelForChunks issued from the
/// constructing thread to run inline (equivalent to a one-thread pool).
/// Used by determinism tests and latency-sensitive call sites.
class ScopedSerial {
 public:
  ScopedSerial();
  ~ScopedSerial();

  ScopedSerial(const ScopedSerial&) = delete;
  ScopedSerial& operator=(const ScopedSerial&) = delete;
};

/// Run fn(i) for i in [begin, end), splitting the range across the pool.
/// `grain` is the minimum number of iterations per task; ranges smaller than
/// 2*grain run serially on the calling thread. Safe to call concurrently
/// from multiple threads and from inside pool tasks (nested calls run
/// inline); each call waits only on its own chunks.
void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t grain = 64);

/// Run fn(begin, end) over contiguous chunks in parallel — cheaper than
/// per-index dispatch for tight loops. Same nesting/overlap guarantees as
/// ParallelFor.
void ParallelForChunks(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t, std::size_t)>& fn,
                       std::size_t grain = 256);

}  // namespace ccperf
