// Crash-consistent binary snapshot format: the durability substrate of the
// checkpoint/restore subsystem (spot-preemption-tolerant serving and
// resumable simulation in src/cloud).
//
// A snapshot is a framed container of named sections:
//
//   header : "CCSN" magic, u32 format version, u32 app tag, u32 section
//            count, u32 CRC32 of the header fields
//   section: u16 name length, name bytes, u64 payload size, u32 CRC32 of
//            the frame fields + payload, payload bytes
//   footer : "SNEN" magic
//
// Every multi-byte field is little-endian; doubles are stored as their raw
// IEEE-754 bit pattern so a restored state is *bitwise* identical to the
// captured one. The reader validates magic, version, app tag, bounds and
// per-section CRCs and throws CheckError on any violation — a corrupted or
// truncated snapshot can never restore garbage state.
//
// WriteSnapshotFileAtomic writes to "<path>.tmp" and renames over <path>,
// so a crash mid-checkpoint leaves the previous good snapshot intact.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ccperf {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of `size` bytes.
std::uint32_t Crc32(const void* data, std::size_t size);
std::uint32_t Crc32(const std::string& bytes);

/// Structural integrity verdict for snapshot bytes of ANY app tag: magic,
/// version, header CRC, framing bounds, every section CRC and the footer.
/// Returns false instead of throwing — integrity scrubs (e.g.
/// SnapshotVault::VerifyAllSections) want a verdict per copy, not an
/// exception on the first corrupted mirror. Does not validate section
/// *contents*; that stays with the app-level Restore path.
[[nodiscard]] bool SnapshotIntact(const std::string& bytes);

/// Appends typed values to one section's payload.
class SnapshotSectionWriter {
 public:
  void PutU8(std::uint8_t v) { PutPod(v); }
  void PutU32(std::uint32_t v) { PutPod(v); }
  void PutU64(std::uint64_t v) { PutPod(v); }
  void PutI64(std::int64_t v) { PutPod(v); }
  void PutBool(bool v) { PutPod(static_cast<std::uint8_t>(v ? 1 : 0)); }
  /// Raw bit pattern — round-trips NaN/inf/-0.0 exactly.
  void PutF64(double v);
  void PutString(const std::string& s);
  void PutF64Vector(const std::vector<double>& v);
  void PutI64Vector(const std::vector<std::int64_t>& v);

  [[nodiscard]] const std::string& Bytes() const { return bytes_; }

 private:
  template <typename T>
  void PutPod(T v);

  std::string bytes_;
};

/// Accumulates named sections and serializes the framed container.
class SnapshotWriter {
 public:
  /// `app_tag` names the snapshot's producer (e.g. 'FSRV'); readers reject
  /// snapshots written by a different subsystem.
  explicit SnapshotWriter(std::uint32_t app_tag);

  /// Start a new section; names must be unique within one snapshot.
  SnapshotSectionWriter& AddSection(const std::string& name);

  /// Serialize the container (header + CRC'd sections + footer).
  [[nodiscard]] std::string Serialize() const;

 private:
  std::uint32_t app_tag_ = 0;
  std::vector<std::pair<std::string, SnapshotSectionWriter>> sections_;
};

/// Atomically persist a snapshot: write "<path>.tmp", flush + fsync it,
/// rename over `path`, then fsync the containing directory so the renamed
/// entry survives a crash (POSIX; the fsyncs are no-ops elsewhere). Throws
/// CheckError on any I/O failure, naming the offending path.
void WriteSnapshotFileAtomic(const std::string& path,
                             const SnapshotWriter& snapshot);

/// Bounds-checked typed reads from one section's payload. Reading past the
/// end throws CheckError.
class SnapshotSectionReader {
 public:
  explicit SnapshotSectionReader(std::string payload)
      : payload_(std::move(payload)) {}

  std::uint8_t TakeU8() { return TakePod<std::uint8_t>(); }
  std::uint32_t TakeU32() { return TakePod<std::uint32_t>(); }
  std::uint64_t TakeU64() { return TakePod<std::uint64_t>(); }
  std::int64_t TakeI64() { return TakePod<std::int64_t>(); }
  bool TakeBool() { return TakePod<std::uint8_t>() != 0; }
  double TakeF64();
  std::string TakeString();
  std::vector<double> TakeF64Vector();
  std::vector<std::int64_t> TakeI64Vector();

  [[nodiscard]] std::size_t Remaining() const {
    return payload_.size() - offset_;
  }
  /// Throws unless every payload byte has been consumed — catches schema
  /// drift between writer and reader.
  void ExpectEnd() const;

 private:
  template <typename T>
  T TakePod();
  void Require(std::size_t bytes) const;

  std::string payload_;
  std::size_t offset_ = 0;
};

/// Parses and validates a serialized snapshot.
class SnapshotReader {
 public:
  /// Throws CheckError on bad magic/version/tag, truncation, or CRC
  /// mismatch in any section.
  static SnapshotReader Parse(const std::string& bytes,
                              std::uint32_t app_tag);
  /// Load + parse a snapshot file; missing/unreadable paths throw
  /// CheckError naming the path.
  static SnapshotReader FromFile(const std::string& path,
                                 std::uint32_t app_tag);

  [[nodiscard]] bool Has(const std::string& name) const;
  /// Section payload by name; throws CheckError when absent.
  [[nodiscard]] SnapshotSectionReader Section(const std::string& name) const;
  [[nodiscard]] std::size_t SectionCount() const { return sections_.size(); }

 private:
  SnapshotReader() = default;
  std::vector<std::pair<std::string, std::string>> sections_;
};

}  // namespace ccperf
