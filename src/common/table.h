// ASCII table rendering used by the bench binaries to print the paper's
// tables and figure series in a readable form.
#pragma once

#include <string>
#include <vector>

namespace ccperf {

/// Column-aligned ASCII table builder.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; its width must match the header width.
  void AddRow(std::vector<std::string> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t RowCount() const { return rows_.size(); }

  /// Render with box-drawing separators.
  [[nodiscard]] std::string Render() const;

  /// Format helper for numbers with fixed decimals.
  static std::string Num(double v, int decimals = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a compact ASCII scatter/line chart of (x, y) series; used to give
/// each figure-reproduction bench a visual sanity check in the terminal.
class AsciiChart {
 public:
  AsciiChart(int width, int height);

  /// Add a named series; points need not be sorted.
  void AddSeries(std::string name, char marker,
                 std::vector<std::pair<double, double>> points);

  [[nodiscard]] std::string Render() const;

 private:
  int width_;
  int height_;
  struct Series {
    std::string name;
    char marker;
    std::vector<std::pair<double, double>> points;
  };
  std::vector<Series> series_;
};

}  // namespace ccperf
