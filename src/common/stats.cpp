#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ccperf {

SampleStats Summarize(std::span<const double> values) {
  CCPERF_CHECK(!values.empty(), "Summarize requires a non-empty sample");
  SampleStats s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(s.count);
  double ss = 0.0;
  for (double v : values) {
    const double d = v - s.mean;
    ss += d * d;
  }
  s.stddev = s.count > 1 ? std::sqrt(ss / static_cast<double>(s.count)) : 0.0;
  return s;
}

double MinOf(std::span<const double> values) {
  CCPERF_CHECK(!values.empty(), "MinOf requires a non-empty sample");
  return *std::min_element(values.begin(), values.end());
}

double MeanOf(std::span<const double> values) {
  CCPERF_CHECK(!values.empty(), "MeanOf requires a non-empty sample");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Quantile(std::vector<double> values, double q) {
  CCPERF_CHECK(!values.empty(), "Quantile requires a non-empty sample");
  CCPERF_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace ccperf
