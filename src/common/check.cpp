#include "common/check.h"

#include <cstdio>

namespace ccperf::detail {

void AppendTo(std::string& out, const char* value) { out += value; }
void AppendTo(std::string& out, const std::string& value) { out += value; }
void AppendTo(std::string& out, char value) { out += value; }
// Matches ostream defaults: bool without boolalpha prints 0/1.
void AppendTo(std::string& out, bool value) { out += value ? '1' : '0'; }
void AppendTo(std::string& out, int value) {
  AppendTo(out, static_cast<long long>(value));
}
void AppendTo(std::string& out, long value) {
  AppendTo(out, static_cast<long long>(value));
}
void AppendTo(std::string& out, long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  out += buf;
}
void AppendTo(std::string& out, unsigned value) {
  AppendTo(out, static_cast<unsigned long long>(value));
}
void AppendTo(std::string& out, unsigned long value) {
  AppendTo(out, static_cast<unsigned long long>(value));
}
void AppendTo(std::string& out, unsigned long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", value);
  out += buf;
}
// %g mirrors the default ostream double format (6 significant digits).
void AppendTo(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  out += buf;
}
void AppendTo(std::string& out, const void* value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%p", value);
  out += buf;
}

void CheckFailed(const char* cond, const char* file, int line,
                 const std::string& msg) {
  std::string what = "CCPERF_CHECK failed: (";
  what += cond;
  what += ") at ";
  what += file;
  AppendTo(what, ':');
  AppendTo(what, line);
  if (!msg.empty()) {
    what += " — ";
    what += msg;
  }
  throw CheckError(what);
}

}  // namespace ccperf::detail
