#include "common/check.h"

namespace ccperf::detail {

void CheckFailed(const char* cond, const char* file, int line,
                 const std::string& msg) {
  std::ostringstream oss;
  oss << "CCPERF_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw CheckError(oss.str());
}

}  // namespace ccperf::detail
