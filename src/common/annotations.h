// Clang Thread Safety Analysis annotations, exposed as CCPERF_* macros.
//
// The analysis (-Wthread-safety) statically proves that every access to a
// CCPERF_GUARDED_BY(mu) member happens with `mu` held, that functions marked
// CCPERF_REQUIRES(mu) are only called under the lock, and that scoped locks
// pair acquire/release on every path. It runs at compile time on Clang with
// the CCPERF_THREAD_SAFETY CMake option; on other compilers (or with the
// option off) every macro expands to nothing, so annotated code stays
// portable. See DESIGN.md §10 and scripts/run_static_analysis.sh.
//
// Annotate with the CCPERF_* spellings only — raw __attribute__ uses would
// silently miss the non-Clang no-op path.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define CCPERF_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CCPERF_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability (e.g. ccperf::Mutex).
#define CCPERF_CAPABILITY(x) CCPERF_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose lifetime holds a capability.
#define CCPERF_SCOPED_CAPABILITY CCPERF_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define CCPERF_GUARDED_BY(x) CCPERF_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define CCPERF_PT_GUARDED_BY(x) CCPERF_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and keeps them).
#define CCPERF_REQUIRES(...) \
  CCPERF_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held.
#define CCPERF_EXCLUDES(...) \
  CCPERF_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires the capability (member functions: `this` by default).
#define CCPERF_ACQUIRE(...) \
  CCPERF_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define CCPERF_RELEASE(...) \
  CCPERF_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define CCPERF_TRY_ACQUIRE(...) \
  CCPERF_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define CCPERF_RETURN_CAPABILITY(x) \
  CCPERF_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function is thread-safe for reasons the analysis
/// cannot see. Use sparingly and say why at the call site.
#define CCPERF_NO_THREAD_SAFETY_ANALYSIS \
  CCPERF_THREAD_ANNOTATION_(no_thread_safety_analysis)
