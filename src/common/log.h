// Tiny leveled logger. Benches and examples use Info; kernels stay silent.
#pragma once

#include <sstream>
#include <string>

namespace ccperf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);

/// Emit a message at `level` to stderr with a level prefix.
void LogMessage(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string Concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void LogInfo(Args&&... args) {
  LogMessage(LogLevel::kInfo, detail::Concat(std::forward<Args>(args)...));
}

template <typename... Args>
void LogWarn(Args&&... args) {
  LogMessage(LogLevel::kWarn, detail::Concat(std::forward<Args>(args)...));
}

template <typename... Args>
void LogDebug(Args&&... args) {
  LogMessage(LogLevel::kDebug, detail::Concat(std::forward<Args>(args)...));
}

}  // namespace ccperf
