#include "common/threading.h"

#include <algorithm>
#include <atomic>
#include <latch>
#include <utility>

#include "common/check.h"

namespace ccperf {

namespace {
// The pool whose WorkerLoop this thread is running, if any; parallel loops
// consult it so a loop issued from inside a GlobalPool task runs inline
// instead of blocking a worker on work that needs that same worker.
thread_local const ThreadPool* tls_worker_pool = nullptr;
// Depth of ScopedSerial scopes alive on this thread.
thread_local int tls_serial_depth = 0;
}  // namespace

// The std::condition_variable underneath requires a std::unique_lock over
// the raw std::mutex; adopt the already-held lock for the duration of the
// block and release it back to the caller's MutexLock afterwards. The
// analysis cannot see through the adopt/release dance, which is exactly why
// these two are the only places it happens.
void CondVar::Wait(Mutex& mu) {
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

bool CondVar::WaitUntil(Mutex& mu,
                        std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  const std::cv_status status = cv_.wait_until(lock, deadline);
  lock.release();
  return status == std::cv_status::no_timeout;
}

void FirstErrorCollector::Record(std::size_t index, std::string message) {
  MutexLock lock(mutex_);
  if (index < index_) {
    index_ = index;
    message_ = std::move(message);
  }
}

bool FirstErrorCollector::HasError() const {
  MutexLock lock(mutex_);
  return index_ != SIZE_MAX;
}

void FirstErrorCollector::RethrowIfError() const {
  MutexLock lock(mutex_);
  if (index_ == SIZE_MAX) return;
  throw CheckError(message_);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  job_available_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    MutexLock lock(mutex_);
    CCPERF_CHECK(!stopping_, "Submit on stopping pool");
    jobs_.push(std::move(job));
    ++in_flight_;
  }
  job_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  all_done_.Wait(mutex_, [this]() CCPERF_REQUIRES(mutex_) {
    return in_flight_ == 0;
  });
}

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mutex_);
      job_available_.Wait(mutex_, [this]() CCPERF_REQUIRES(mutex_) {
        return stopping_ || !jobs_.empty();
      });
      if (jobs_.empty()) return;  // stopping_ and drained
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

ThreadPool& GlobalPool() {
  static ThreadPool pool;
  return pool;
}

bool OnGlobalPoolWorker() {
  return tls_worker_pool != nullptr && tls_worker_pool == &GlobalPool();
}

ScopedSerial::ScopedSerial() { ++tls_serial_depth; }
ScopedSerial::~ScopedSerial() { --tls_serial_depth; }

void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t grain) {
  ParallelForChunks(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

void ParallelForChunks(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t, std::size_t)>& fn,
                       std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t n = end - begin;
  // Run inline when splitting cannot help (small range, one worker), when
  // the caller asked for serial execution, or when we are already on a
  // GlobalPool worker — a nested dispatch would block this worker waiting
  // for chunks that may need this very worker to run.
  if (tls_serial_depth > 0 || OnGlobalPoolWorker() || n < 2 * grain) {
    fn(begin, end);
    return;
  }
  ThreadPool& pool = GlobalPool();
  const std::size_t workers = pool.ThreadCount();
  if (workers <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t chunks =
      std::min(workers * 4, std::max<std::size_t>(1, n / grain));
  const std::size_t chunk = (n + chunks - 1) / chunks;
  const std::size_t live = (n + chunk - 1) / chunk;  // non-empty chunks
  // Per-call latch, not ThreadPool::Wait(): each caller waits only on its
  // own chunks, so overlapping dispatch from several threads never blocks
  // one caller on another's jobs.
  std::latch done(static_cast<std::ptrdiff_t>(live));
  std::atomic<bool> failed{false};
  for (std::size_t c = 0; c < live; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    pool.Submit([&fn, &failed, &done, lo, hi] {
      try {
        fn(lo, hi);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
      }
      done.count_down();
    });
  }
  done.wait();
  CCPERF_CHECK(!failed.load(), "a ParallelFor task threw an exception");
}

}  // namespace ccperf
