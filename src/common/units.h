// Strong unit types for the cost-accuracy arithmetic (DESIGN.md §15).
//
// The paper's model is arithmetic over mixed dimensions: Eq. 3-4 bill $/hour
// prices against runtimes in seconds, TAR/CAR divide time and cost by
// accuracy, and the spot/SDC extensions add per-hour event rates. A bare
// `double` compiles no matter which of those a call site actually holds, so
// a seconds-vs-hours or $-vs-$/hr mix-up only surfaces as a wrong frontier.
// This header makes dimensional correctness a compile-time invariant, the
// same move PR 5 made for lock discipline (annotations.h): the bug class is
// rejected by the compiler and the rejection itself is proven by
// negative-compile tests (tests/static_analysis/units_negative_*.cpp).
//
// Design rules (each backed by a negative-compile case):
//   * No implicit construction from double: `Usd c = 3.0;` does not compile.
//     Wrapping a raw double is always a visible, greppable `Usd(3.0)`.
//   * No implicit conversion to double: reading the raw number is a visible
//     `.value()` call, so a quantity cannot silently re-enter untyped math.
//   * Same-dimension, same-scale arithmetic only: Seconds + Seconds is fine,
//     Usd + Hours is not, and neither is Seconds + Hours — converting
//     between scales of one dimension is explicit (ToHours / ToSeconds).
//   * Cross-dimension operators exist only where the model defines them:
//     UsdPerHour × Hours → Usd, Usd / Hours → UsdPerHour, RatePerHour ×
//     Hours → dimensionless expected count, Flops / GFlopsPerSec → Seconds,
//     Bytes / GBytesPerSec → Seconds. Multiplying two prices does not
//     compile.
//
// Zero overhead: Quantity is a trivially-copyable wrapper holding exactly
// one double (static_asserts below); every operator is a constexpr inline
// forwarding to the identical double expression, so the refactor from raw
// doubles is bitwise value-preserving (pinned by the golden/differential
// suites) and codegen-neutral at -O1+ (the wrapper dissolves into the same
// scalar SSA values).
#pragma once

#include <compare>
#include <ratio>
#include <type_traits>

namespace ccperf::units {

// Dimension tags. A Quantity's identity is (dimension, scale ratio); two
// quantities interoperate implicitly only when BOTH match.
struct TimeDim {};         // base unit: second
struct MoneyDim {};        // base unit: USD
struct MoneyRateDim {};    // base unit: USD per hour (cloud list prices)
struct EventRateDim {};    // base unit: events per hour (failure/SDC rates)
struct ComputeDim {};      // base unit: FLOP
struct ComputeRateDim {};  // base unit: GFLOP per second
struct InfoDim {};         // base unit: byte
struct InfoRateDim {};     // base unit: GB per second

/// One dimensioned scalar. `Scale` is the magnitude of this unit in the
/// dimension's base unit (Hours = Quantity<TimeDim, ratio<3600>>). The
/// stored value is in THIS unit, not the base unit — Hours(2).value() == 2 —
/// so wrapping and unwrapping never rescales a number (bitwise neutrality).
template <typename Dim, typename Scale = std::ratio<1>>
class Quantity {
 public:
  using dimension = Dim;
  using scale = Scale;

  constexpr Quantity() = default;
  explicit constexpr Quantity(double value) : value_(value) {}

  /// The raw magnitude in this unit. The only exit back to untyped math.
  [[nodiscard]] constexpr double value() const { return value_; }

  // Same-unit arithmetic.
  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.value_ + b.value_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.value_ - b.value_);
  }
  constexpr Quantity operator-() const { return Quantity(-value_); }
  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }

  // Dimensionless scaling (counts, fractions, factors).
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity(a.value_ * s);
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity(s * a.value_);
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity(a.value_ / s);
  }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }

  friend constexpr bool operator==(Quantity a, Quantity b) {
    return a.value_ == b.value_;
  }
  friend constexpr auto operator<=>(Quantity a, Quantity b) {
    return a.value_ <=> b.value_;
  }

 private:
  double value_ = 0.0;
};

// The named units of the cost-accuracy model.
using Seconds = Quantity<TimeDim>;
using Milliseconds = Quantity<TimeDim, std::milli>;
using Minutes = Quantity<TimeDim, std::ratio<60>>;
using Hours = Quantity<TimeDim, std::ratio<3600>>;
using Usd = Quantity<MoneyDim>;
using UsdPerHour = Quantity<MoneyRateDim>;
using RatePerHour = Quantity<EventRateDim>;
using Flops = Quantity<ComputeDim>;
using GFlopsPerSec = Quantity<ComputeRateDim>;
using Bytes = Quantity<InfoDim>;
using GBytesPerSec = Quantity<InfoRateDim>;

// Zero-overhead claim, enforced: a Quantity is exactly a double in memory
// and in parameter passing (trivially copyable => register calling
// convention for the single double member on x86-64/AArch64).
static_assert(sizeof(Seconds) == sizeof(double));
static_assert(sizeof(Usd) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Seconds>);
static_assert(std::is_trivially_copyable_v<UsdPerHour>);
static_assert(std::is_standard_layout_v<Hours>);
static_assert(std::is_trivially_copyable_v<RatePerHour>);

// --- explicit scale conversions (Time) --------------------------------------
// Each conversion is the literal arithmetic the raw-double code wrote
// (x / 3600.0, x * 3600.0, ...), so converting through the typed API is
// bitwise identical to the untyped expression it replaced.

[[nodiscard]] constexpr Hours ToHours(Seconds s) {
  return Hours(s.value() / 3600.0);
}
[[nodiscard]] constexpr Hours ToHours(Minutes m) {
  return Hours(m.value() / 60.0);
}
[[nodiscard]] constexpr Seconds ToSeconds(Hours h) {
  return Seconds(h.value() * 3600.0);
}
[[nodiscard]] constexpr Seconds ToSeconds(Minutes m) {
  return Seconds(m.value() * 60.0);
}
[[nodiscard]] constexpr Seconds ToSeconds(Milliseconds ms) {
  return Seconds(ms.value() / 1000.0);
}
[[nodiscard]] constexpr Minutes ToMinutes(Seconds s) {
  return Minutes(s.value() / 60.0);
}
[[nodiscard]] constexpr Minutes ToMinutes(Hours h) {
  return Minutes(h.value() * 60.0);
}
[[nodiscard]] constexpr Milliseconds ToMilliseconds(Seconds s) {
  return Milliseconds(s.value() * 1000.0);
}

// --- dimension algebra ------------------------------------------------------
// Only the products/quotients the model defines. Everything else is a
// compile error by omission.

// Money: price × time = cost (Eq. 1's c_i · T, after prorating).
[[nodiscard]] constexpr Usd operator*(UsdPerHour price, Hours t) {
  return Usd(price.value() * t.value());
}
[[nodiscard]] constexpr Usd operator*(Hours t, UsdPerHour price) {
  return Usd(t.value() * price.value());
}
[[nodiscard]] constexpr UsdPerHour operator/(Usd cost, Hours t) {
  return UsdPerHour(cost.value() / t.value());
}
[[nodiscard]] constexpr Hours operator/(Usd cost, UsdPerHour price) {
  return Hours(cost.value() / price.value());
}

// Event rates: rate × time = expected event count (dimensionless).
[[nodiscard]] constexpr double operator*(RatePerHour rate, Hours t) {
  return rate.value() * t.value();
}
[[nodiscard]] constexpr double operator*(Hours t, RatePerHour rate) {
  return t.value() * rate.value();
}

// Roofline arithmetic: work / throughput = time.
[[nodiscard]] constexpr Seconds operator/(Flops work, GFlopsPerSec rate) {
  return Seconds(work.value() / (rate.value() * 1e9));
}
[[nodiscard]] constexpr Seconds operator/(Bytes traffic, GBytesPerSec rate) {
  return Seconds(traffic.value() / (rate.value() * 1e9));
}

}  // namespace ccperf::units

namespace ccperf {
// The unit names are project vocabulary; make them usable unqualified from
// every ccperf:: namespace (cloud, core, ...).
using units::Bytes;
using units::Flops;
using units::GBytesPerSec;
using units::GFlopsPerSec;
using units::Hours;
using units::Milliseconds;
using units::Minutes;
using units::RatePerHour;
using units::Seconds;
using units::ToHours;
using units::ToMilliseconds;
using units::ToMinutes;
using units::ToSeconds;
using units::Usd;
using units::UsdPerHour;
}  // namespace ccperf
