// Minimal CSV writer so every bench can also dump machine-readable series.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ccperf {

/// Streaming CSV writer with RFC-4180 quoting of commas/quotes/newlines.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one row; width must match the header.
  void AddRow(const std::vector<std::string>& cells);

  /// Flushes and closes; also called by the destructor.
  void Close();

  ~CsvWriter();

 private:
  void WriteRow(const std::vector<std::string>& cells);
  static std::string Escape(const std::string& cell);

  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace ccperf
