// Small descriptive-statistics helpers for measurement post-processing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ccperf {

/// Summary of a sample of measurements.
struct SampleStats {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // population stddev; 0 for count < 2
};

/// Compute summary statistics over a non-empty sample.
SampleStats Summarize(std::span<const double> values);

/// Minimum of a non-empty sample (the paper records min of 3 repetitions).
double MinOf(std::span<const double> values);

/// Arithmetic mean of a non-empty sample.
double MeanOf(std::span<const double> values);

/// Linearly interpolated quantile q in [0, 1] of a non-empty sample.
double Quantile(std::vector<double> values, double q);

}  // namespace ccperf
