#include "common/log.h"

#include <atomic>
#include <iostream>

#include "common/threading.h"

namespace ccperf {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
// Serializes writes to std::cerr so interleaved LogMessage calls emit whole
// lines; annotated so the static analysis covers the logging path too.
Mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  MutexLock lock(g_log_mutex);
  std::cerr << "[" << LevelName(level) << "] " << message << "\n";
}

}  // namespace ccperf
