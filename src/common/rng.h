// Deterministic pseudo-random number generation.
//
// All stochastic parts of ccperf (synthetic weights, synthetic images,
// workload jitter) draw from Rng so that every experiment is reproducible
// from a single seed. The generator is xoshiro256**, seeded via SplitMix64.
#pragma once

#include <cstdint>
#include <vector>

namespace ccperf {

/// SplitMix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t SplitMix64(std::uint64_t& state);

/// Deterministic xoshiro256** generator with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform float in [lo, hi).
  float NextFloat(float lo, float hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t NextIndex(std::uint64_t n);

  /// Standard normal variate (Box–Muller, cached pair).
  double NextGaussian();

  /// Gaussian with explicit mean/stddev.
  double NextGaussian(double mean, double stddev);

  /// Derive an independent child stream (for per-layer / per-image streams).
  Rng Fork();

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::uint32_t> Permutation(std::uint32_t n);

 private:
  std::uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ccperf
