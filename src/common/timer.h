// Wall-clock timing helpers used by the measurement pipeline.
#pragma once

#include <chrono>

namespace ccperf {

/// Monotonic stopwatch returning elapsed seconds as double.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Reset().
  [[nodiscard]] double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ccperf
