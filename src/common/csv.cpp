#include "common/csv.h"

#include "common/check.h"

namespace ccperf {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  CCPERF_CHECK(out_.good(), "failed to open CSV file ", path);
  CCPERF_CHECK(columns_ > 0, "CSV needs at least one column");
  WriteRow(header);
}

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  CCPERF_CHECK(cells.size() == columns_, "CSV row width mismatch");
  WriteRow(cells);
}

void CsvWriter::Close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { Close(); }

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << Escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::Escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace ccperf
