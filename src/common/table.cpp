#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace ccperf {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CCPERF_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::AddRow(std::vector<std::string> cells) {
  CCPERF_CHECK(cells.size() == headers_.size(), "row width ", cells.size(),
               " != header width ", headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int decimals) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(decimals) << v;
  return oss.str();
}

std::string Table::Render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto rule = [&] {
    std::string s = "+";
    for (auto w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(width[c] - cells[c].size(), ' ') + " |";
    }
    return s + "\n";
  };
  std::string out = rule() + line(headers_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

AsciiChart::AsciiChart(int width, int height) : width_(width), height_(height) {
  CCPERF_CHECK(width_ >= 16 && height_ >= 4, "chart too small");
}

void AsciiChart::AddSeries(std::string name, char marker,
                           std::vector<std::pair<double, double>> points) {
  series_.push_back({std::move(name), marker, std::move(points)});
}

std::string AsciiChart::Render() const {
  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  bool any = false;
  for (const auto& s : series_) {
    for (auto [x, y] : s.points) {
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
      any = true;
    }
  }
  if (!any) return "(empty chart)\n";
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax == ymin) ymax = ymin + 1;

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_), ' '));
  for (const auto& s : series_) {
    for (auto [x, y] : s.points) {
      auto cx = static_cast<int>(std::lround((x - xmin) / (xmax - xmin) *
                                             (width_ - 1)));
      auto cy = static_cast<int>(std::lround((y - ymin) / (ymax - ymin) *
                                             (height_ - 1)));
      cx = std::clamp(cx, 0, width_ - 1);
      cy = std::clamp(cy, 0, height_ - 1);
      grid[static_cast<std::size_t>(height_ - 1 - cy)]
          [static_cast<std::size_t>(cx)] = s.marker;
    }
  }
  std::ostringstream oss;
  oss << std::setprecision(4);
  oss << "y: [" << ymin << ", " << ymax << "]  x: [" << xmin << ", " << xmax
      << "]";
  for (const auto& s : series_) oss << "  " << s.marker << "=" << s.name;
  oss << "\n";
  for (const auto& row : grid) oss << "  |" << row << "|\n";
  return oss.str();
}

}  // namespace ccperf
