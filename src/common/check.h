// Runtime precondition/invariant checking for ccperf.
//
// CCPERF_CHECK(cond, msg...) throws ccperf::CheckError on violation. Checks
// stay enabled in release builds: this library is an analysis tool, and a
// silently wrong Pareto frontier is worse than a thrown exception.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace ccperf {

/// Error thrown when a CCPERF_CHECK condition is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void CheckFailed(const char* cond, const char* file, int line,
                              const std::string& msg);

template <typename... Args>
std::string ConcatMessage(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  return oss.str();
}
}  // namespace detail

}  // namespace ccperf

#define CCPERF_CHECK(cond, ...)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::ccperf::detail::CheckFailed(                                  \
          #cond, __FILE__, __LINE__,                                  \
          ::ccperf::detail::ConcatMessage("" __VA_OPT__(, ) __VA_ARGS__)); \
    }                                                                 \
  } while (false)
