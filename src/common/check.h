// Runtime precondition/invariant checking for ccperf.
//
// CCPERF_CHECK(cond, msg...) throws ccperf::CheckError on violation. Checks
// stay enabled in release builds: this library is an analysis tool, and a
// silently wrong Pareto frontier is worse than a thrown exception.
//
// Formatting lives out of line in check.cpp (the AppendTo overloads) and
// ConcatMessage has internal linkage: a TU that uses CCPERF_CHECK emits no
// weak formatting symbols. That matters for the kernel TUs built with
// CCPERF_KERNEL_FLAGS (-march=native): a weak helper instantiated both
// there and in a generic TU would be merged arbitrarily by the linker,
// leaking kernel-only ISA into generic code. scripts/check_kernel_odr.sh
// enforces this stays true.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace ccperf {

/// Error thrown when a CCPERF_CHECK condition is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void CheckFailed(const char* cond, const char* file, int line,
                              const std::string& msg);

// Out-of-line formatting primitives (check.cpp). Non-template, so callers
// instantiate nothing; doubles use %g to match the old ostream output.
void AppendTo(std::string& out, const char* value);
void AppendTo(std::string& out, const std::string& value);
void AppendTo(std::string& out, char value);
void AppendTo(std::string& out, bool value);
void AppendTo(std::string& out, int value);
void AppendTo(std::string& out, long value);
void AppendTo(std::string& out, long long value);
void AppendTo(std::string& out, unsigned value);
void AppendTo(std::string& out, unsigned long value);
void AppendTo(std::string& out, unsigned long long value);
void AppendTo(std::string& out, double value);
void AppendTo(std::string& out, const void* value);

// `static`: internal linkage keeps every instantiation TU-local instead of
// emitting a weak symbol the linker could dedup across TUs compiled with
// different ISA flags (see scripts/check_kernel_odr.sh).
template <typename... Args>
static std::string ConcatMessage(Args&&... args) {
  std::string out;
  (AppendTo(out, std::forward<Args>(args)), ...);
  return out;
}
}  // namespace detail

}  // namespace ccperf

#define CCPERF_CHECK(cond, ...)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::ccperf::detail::CheckFailed(                                  \
          #cond, __FILE__, __LINE__,                                  \
          ::ccperf::detail::ConcatMessage("" __VA_OPT__(, ) __VA_ARGS__)); \
    }                                                                 \
  } while (false)
