#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace ccperf {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

std::uint64_t Rng::NextIndex(std::uint64_t n) {
  CCPERF_CHECK(n > 0, "NextIndex requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xd1b54a32d192ed03ULL); }

std::vector<std::uint32_t> Rng::Permutation(std::uint32_t n) {
  std::vector<std::uint32_t> p(n);
  for (std::uint32_t i = 0; i < n; ++i) p[i] = i;
  for (std::uint32_t i = n; i > 1; --i) {
    const auto j = static_cast<std::uint32_t>(NextIndex(i));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

}  // namespace ccperf
