#include "common/snapshot.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/check.h"

namespace ccperf {

namespace {

constexpr char kMagic[4] = {'C', 'C', 'S', 'N'};
constexpr char kFooter[4] = {'S', 'N', 'E', 'N'};
constexpr std::uint32_t kFormatVersion = 1;
// A snapshot section beyond this is a corrupted length field, not data:
// the serving engine's largest section (latency samples) stays far below.
constexpr std::uint64_t kMaxSectionBytes = 1ull << 31;
constexpr std::size_t kMaxSections = 1024;
constexpr std::size_t kMaxVectorElements = 1u << 28;

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

template <typename T>
void AppendPod(std::string& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

#if defined(__unix__) || defined(__APPLE__)
// Flush a path's data (or, for a directory, its entries) to stable
// storage; errors throw CheckError naming the path. An fsync that fails
// may leave the kernel's dirty state unknowable, so surfacing it loudly
// beats pretending the snapshot is durable.
void FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  CCPERF_CHECK(fd >= 0, "cannot open '", path, "' for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  CCPERF_CHECK(rc == 0, "fsync failed for '", path, "'");
}

// Directory half of the atomic write-rename protocol: rename() makes the
// new name visible, but only an fsync of the *containing directory* makes
// it durable — a crash before that can resurrect the old directory entry.
void FsyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  FsyncPath(slash == std::string::npos ? std::string(".")
                                       : path.substr(0, slash + 1));
}
#endif

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t Crc32(const std::string& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

// --- writer ------------------------------------------------------------------

template <typename T>
void SnapshotSectionWriter::PutPod(T v) {
  AppendPod(bytes_, v);
}

template void SnapshotSectionWriter::PutPod(std::uint8_t);
template void SnapshotSectionWriter::PutPod(std::uint16_t);
template void SnapshotSectionWriter::PutPod(std::uint32_t);
template void SnapshotSectionWriter::PutPod(std::uint64_t);
template void SnapshotSectionWriter::PutPod(std::int64_t);

void SnapshotSectionWriter::PutF64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutPod(bits);
}

void SnapshotSectionWriter::PutString(const std::string& s) {
  CCPERF_CHECK(s.size() < (1u << 16), "snapshot string too long");
  PutPod(static_cast<std::uint16_t>(s.size()));
  bytes_.append(s);
}

void SnapshotSectionWriter::PutF64Vector(const std::vector<double>& v) {
  PutPod(static_cast<std::uint64_t>(v.size()));
  for (double d : v) PutF64(d);
}

void SnapshotSectionWriter::PutI64Vector(
    const std::vector<std::int64_t>& v) {
  PutPod(static_cast<std::uint64_t>(v.size()));
  for (std::int64_t i : v) PutPod(i);
}

SnapshotWriter::SnapshotWriter(std::uint32_t app_tag) : app_tag_(app_tag) {}

SnapshotSectionWriter& SnapshotWriter::AddSection(const std::string& name) {
  CCPERF_CHECK(!name.empty() && name.size() < (1u << 16),
               "invalid snapshot section name");
  for (const auto& [existing, _] : sections_) {
    CCPERF_CHECK(existing != name, "duplicate snapshot section '", name, "'");
  }
  sections_.emplace_back(name, SnapshotSectionWriter{});
  return sections_.back().second;
}

std::string SnapshotWriter::Serialize() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  std::string header;
  AppendPod<std::uint32_t>(header, kFormatVersion);
  AppendPod<std::uint32_t>(header, app_tag_);
  AppendPod<std::uint32_t>(header, static_cast<std::uint32_t>(sections_.size()));
  out.append(header);
  AppendPod<std::uint32_t>(out, Crc32(header));
  for (const auto& [name, section] : sections_) {
    // The CRC covers the section's frame fields (name length, name,
    // payload size) as well as the payload, so a flipped bit anywhere in
    // the section is caught, not just inside the payload.
    std::string frame;
    AppendPod<std::uint16_t>(frame, static_cast<std::uint16_t>(name.size()));
    frame.append(name);
    AppendPod<std::uint64_t>(
        frame, static_cast<std::uint64_t>(section.Bytes().size()));
    out.append(frame);
    AppendPod<std::uint32_t>(out, Crc32(frame + section.Bytes()));
    out.append(section.Bytes());
  }
  out.append(kFooter, sizeof(kFooter));
  return out;
}

void WriteSnapshotFileAtomic(const std::string& path,
                             const SnapshotWriter& snapshot) {
  const std::string bytes = snapshot.Serialize();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    CCPERF_CHECK(out.good(), "cannot open snapshot tmp file '", tmp, "'");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      CCPERF_CHECK(false, "write failed for snapshot tmp file '", tmp, "'");
    }
  }
#if defined(__unix__) || defined(__APPLE__)
  // The ofstream flush above only hands the bytes to the kernel; fsync the
  // tmp file so the *contents* are durable before the rename publishes the
  // name (rename-before-fsync can leave `path` pointing at zero-length or
  // torn data after a crash).
  FsyncPath(tmp);
#endif
  // POSIX rename replaces the target atomically: a crash leaves either the
  // old snapshot or the new one, never a torn file at `path`.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    CCPERF_CHECK(false, "cannot rename snapshot '", tmp, "' over '", path,
                 "'");
  }
#if defined(__unix__) || defined(__APPLE__)
  // And fsync the containing directory so the renamed entry itself is
  // durable — without this a crash can roll the directory back to the old
  // snapshot (or to nothing, for a first write).
  FsyncParentDir(path);
#endif
}

// --- reader ------------------------------------------------------------------

void SnapshotSectionReader::Require(std::size_t bytes) const {
  CCPERF_CHECK(offset_ + bytes <= payload_.size() && offset_ + bytes >= bytes,
               "truncated snapshot section: need ", bytes, " bytes at offset ",
               offset_, " of ", payload_.size());
}

template <typename T>
T SnapshotSectionReader::TakePod() {
  static_assert(std::is_trivially_copyable_v<T>);
  Require(sizeof(T));
  T v;
  std::memcpy(&v, payload_.data() + offset_, sizeof(T));
  offset_ += sizeof(T);
  return v;
}

template std::uint8_t SnapshotSectionReader::TakePod();
template std::uint16_t SnapshotSectionReader::TakePod();
template std::uint32_t SnapshotSectionReader::TakePod();
template std::uint64_t SnapshotSectionReader::TakePod();
template std::int64_t SnapshotSectionReader::TakePod();

double SnapshotSectionReader::TakeF64() {
  const std::uint64_t bits = TakePod<std::uint64_t>();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotSectionReader::TakeString() {
  const auto size = TakePod<std::uint16_t>();
  Require(size);
  std::string s = payload_.substr(offset_, size);
  offset_ += size;
  return s;
}

std::vector<double> SnapshotSectionReader::TakeF64Vector() {
  const auto count = TakePod<std::uint64_t>();
  CCPERF_CHECK(count <= kMaxVectorElements && count * 8 <= Remaining(),
               "corrupt snapshot: implausible vector length ", count);
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) v.push_back(TakeF64());
  return v;
}

std::vector<std::int64_t> SnapshotSectionReader::TakeI64Vector() {
  const auto count = TakePod<std::uint64_t>();
  CCPERF_CHECK(count <= kMaxVectorElements && count * 8 <= Remaining(),
               "corrupt snapshot: implausible vector length ", count);
  std::vector<std::int64_t> v;
  v.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) v.push_back(TakePod<std::int64_t>());
  return v;
}

void SnapshotSectionReader::ExpectEnd() const {
  CCPERF_CHECK(offset_ == payload_.size(),
               "snapshot section has ", payload_.size() - offset_,
               " unread trailing bytes (schema mismatch)");
}

bool SnapshotIntact(const std::string& bytes) {
  // The app tag lives at a fixed offset (magic, version, tag); reading it
  // back and parsing against it makes the check tag-agnostic. A flip inside
  // the tag field itself still fails the header CRC.
  if (bytes.size() < sizeof(kMagic) + 2 * sizeof(std::uint32_t)) return false;
  std::uint32_t tag = 0;
  std::memcpy(&tag, bytes.data() + sizeof(kMagic) + sizeof(std::uint32_t),
              sizeof(tag));
  try {
    (void)SnapshotReader::Parse(bytes, tag);
    return true;
  } catch (const CheckError&) {
    return false;
  }
}

SnapshotReader SnapshotReader::Parse(const std::string& bytes,
                                     std::uint32_t app_tag) {
  std::size_t offset = 0;
  const auto require = [&](std::size_t n) {
    CCPERF_CHECK(offset + n <= bytes.size() && offset + n >= n,
                 "truncated snapshot: need ", n, " bytes at offset ", offset,
                 " of ", bytes.size());
  };
  const auto take_pod = [&]<typename T>(T* out) {
    require(sizeof(T));
    std::memcpy(out, bytes.data() + offset, sizeof(T));
    offset += sizeof(T);
  };

  require(sizeof(kMagic));
  CCPERF_CHECK(std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0,
               "not a ccperf snapshot (bad magic)");
  offset += sizeof(kMagic);

  const std::size_t header_start = offset;
  std::uint32_t version = 0, tag = 0, section_count = 0, header_crc = 0;
  take_pod(&version);
  take_pod(&tag);
  take_pod(&section_count);
  const std::string header = bytes.substr(header_start, offset - header_start);
  take_pod(&header_crc);
  CCPERF_CHECK(header_crc == Crc32(header),
               "corrupt snapshot: header CRC mismatch");
  CCPERF_CHECK(version == kFormatVersion,
               "unsupported snapshot format version ", version);
  CCPERF_CHECK(tag == app_tag, "snapshot app tag mismatch: got ", tag,
               ", expected ", app_tag);
  CCPERF_CHECK(section_count <= kMaxSections,
               "corrupt snapshot: implausible section count ", section_count);

  SnapshotReader reader;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    const std::size_t frame_start = offset;
    std::uint16_t name_len = 0;
    take_pod(&name_len);
    require(name_len);
    std::string name = bytes.substr(offset, name_len);
    offset += name_len;
    std::uint64_t payload_size = 0;
    take_pod(&payload_size);
    const std::string frame = bytes.substr(frame_start, offset - frame_start);
    std::uint32_t section_crc = 0;
    take_pod(&section_crc);
    CCPERF_CHECK(payload_size <= kMaxSectionBytes,
                 "corrupt snapshot: implausible section size ", payload_size);
    require(static_cast<std::size_t>(payload_size));
    std::string payload =
        bytes.substr(offset, static_cast<std::size_t>(payload_size));
    offset += static_cast<std::size_t>(payload_size);
    CCPERF_CHECK(section_crc == Crc32(frame + payload),
                 "corrupt snapshot: section '", name, "' CRC mismatch");
    reader.sections_.emplace_back(std::move(name), std::move(payload));
  }
  require(sizeof(kFooter));
  CCPERF_CHECK(
      std::memcmp(bytes.data() + offset, kFooter, sizeof(kFooter)) == 0,
      "truncated snapshot: missing footer");
  offset += sizeof(kFooter);
  CCPERF_CHECK(offset == bytes.size(),
               "corrupt snapshot: ", bytes.size() - offset,
               " trailing bytes after footer");
  return reader;
}

SnapshotReader SnapshotReader::FromFile(const std::string& path,
                                        std::uint32_t app_tag) {
  std::ifstream in(path, std::ios::binary);
  CCPERF_CHECK(in.good(), "cannot open snapshot file '", path, "'");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  CCPERF_CHECK(!in.bad(), "read failed for snapshot file '", path, "'");
  return Parse(bytes, app_tag);
}

bool SnapshotReader::Has(const std::string& name) const {
  for (const auto& [existing, _] : sections_) {
    if (existing == name) return true;
  }
  return false;
}

SnapshotSectionReader SnapshotReader::Section(const std::string& name) const {
  for (const auto& [existing, payload] : sections_) {
    if (existing == name) return SnapshotSectionReader(payload);
  }
  CCPERF_CHECK(false, "snapshot has no section '", name, "'");
}

}  // namespace ccperf
