// Mini-batch SGD training of a Network against cross-entropy loss.
//
// The network must end in a softmax head; the trainer fuses softmax with
// cross-entropy for numerical stability (gradient at the logits is simply
// p - onehot). Supports any DAG of differentiable layers (see backward.h);
// multiple consumers of an activation have their gradients summed.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>

#include "data/synthetic_dataset.h"
#include "nn/network.h"
#include "train/backward.h"

namespace ccperf::train {

/// SGD hyper-parameters.
struct TrainConfig {
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  /// Keep exactly-zero weights at zero across updates — the Li et al.
  /// prune-then-retrain protocol: fine-tune the surviving weights to
  /// recover accuracy without losing sparsity (and its speedup).
  bool preserve_sparsity = false;
};

/// Momentum SGD over a network's weighted layers.
class SgdTrainer {
 public:
  /// `net` must outlive the trainer, end in softmax, and contain only
  /// differentiable layers. Throws otherwise.
  SgdTrainer(nn::Network& net, TrainConfig config = {});

  /// One forward/backward/update step on a labeled batch; returns the mean
  /// cross-entropy loss of the batch (before the update).
  double TrainBatch(const Tensor& images, std::span<const std::int64_t> labels);

  /// Mean cross-entropy without updating weights.
  [[nodiscard]] double EvalLoss(const Tensor& images,
                                std::span<const std::int64_t> labels) const;

  /// Run `epochs` passes over [0, train_size) of `dataset` in batches;
  /// returns the final epoch's mean loss.
  double Fit(const data::SyntheticImageDataset& dataset,
             std::int64_t train_size, std::int64_t batch, int epochs);

  [[nodiscard]] const TrainConfig& Config() const { return config_; }

 private:
  double Step(const Tensor& images, std::span<const std::int64_t> labels,
              bool update);

  nn::Network& net_;
  TrainConfig config_;
  std::map<std::string, LayerGrads> velocity_;  // momentum buffers
};

/// Top-k accuracy of `net` against ground-truth labels of dataset images
/// [start, start+count).
double TopKAccuracy(const nn::Network& net,
                    const data::SyntheticImageDataset& dataset,
                    std::int64_t start, std::int64_t count, std::size_t k,
                    std::int64_t batch = 32);

}  // namespace ccperf::train
