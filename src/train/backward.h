// Per-layer backward passes — the gradient substrate behind SgdTrainer.
//
// The paper's CNNs were trained before being pruned; this module lets the
// reproduction do the same on synthetic data, so accuracy is measured
// against ground-truth labels rather than proxied by teacher agreement.
//
// Supported layers: convolution (incl. groups), fully-connected, ReLU,
// max/avg pooling, LRN, dropout (identity at our inference semantics),
// concat, and softmax — every layer kind in the library, each verified by
// numerical gradient checking.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace ccperf::train {

/// Parameter gradients of one weighted layer (same shapes as the layer's
/// weights/bias).
struct LayerGrads {
  Tensor weights;
  Tensor bias;
};

/// Compute the gradient w.r.t. each input of `layer`, given the forward
/// inputs/output and the gradient w.r.t. the output. For weighted layers,
/// parameter gradients are *accumulated* into `grads` (must be pre-shaped);
/// pass nullptr for weightless layers. Throws CheckError for unsupported
/// layer kinds.
std::vector<Tensor> BackwardLayer(const nn::Layer& layer,
                                  const std::vector<const Tensor*>& inputs,
                                  const Tensor& output,
                                  const Tensor& grad_output,
                                  LayerGrads* grads);

/// True if SgdTrainer can differentiate through this layer.
bool IsDifferentiable(const nn::Layer& layer);

}  // namespace ccperf::train
