#include "train/backward.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "nn/activation_layers.h"
#include "nn/concat_layer.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/lrn_layer.h"
#include "nn/pool_layer.h"
#include "tensor/im2col.h"

namespace ccperf::train {

namespace {

/// C[M,N] += A[M,K] * B[N,K]^T (row-major). Used for dW = G * columns^T.
void GemmNTAccumulate(std::int64_t m, std::int64_t n, std::int64_t k,
                      const float* a, const float* b, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

/// C[M,N] = A[K,M]^T * B[K,N] (row-major). Used for dColumns = W^T * G.
void GemmTN(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
            const float* b, float* c) {
  std::fill(c, c + m * n, 0.0f);
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float aik = arow[i];
      if (aik == 0.0f) continue;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

}  // namespace

bool IsDifferentiable(const nn::Layer& layer) {
  switch (layer.Kind()) {
    case nn::LayerKind::kConvolution:
    case nn::LayerKind::kFullyConnected:
    case nn::LayerKind::kReLU:
    case nn::LayerKind::kMaxPool:
    case nn::LayerKind::kAvgPool:
    case nn::LayerKind::kDropout:
    case nn::LayerKind::kConcat:
    case nn::LayerKind::kSoftmax:
    case nn::LayerKind::kLRN:
      return true;
    default:
      return false;
  }
}

std::vector<Tensor> BackwardLayer(const nn::Layer& layer,
                                  const std::vector<const Tensor*>& inputs,
                                  const Tensor& output,
                                  const Tensor& grad_output,
                                  LayerGrads* grads) {
  CCPERF_CHECK(grad_output.GetShape() == output.GetShape(),
               "grad_output shape mismatch for ", layer.Name());
  switch (layer.Kind()) {
    case nn::LayerKind::kConvolution: {
      CCPERF_CHECK(inputs.size() == 1, "conv arity");
      const auto& conv = static_cast<const nn::ConvLayer&>(layer);
      // BackwardConv writes parameter grads and returns grad_input via the
      // shared implementation below.
      CCPERF_CHECK(grads != nullptr &&
                       grads->weights.GetShape() == conv.Weights().GetShape(),
                   "gradient store mis-shaped for ", layer.Name());
      // Re-run the core and capture grad_input.
      const Shape& in_shape = inputs[0]->GetShape();
      Tensor grad_input(in_shape);
      {
        // Inline of BackwardConv with grad capture (see above helper).
        const nn::ConvParams& p = conv.Params();
        const std::int64_t batch = in_shape.Dim(0);
        const std::int64_t groups = p.groups;
        const std::int64_t group_in = conv.InChannels() / groups;
        const std::int64_t group_out = p.out_channels / groups;
        ConvGeometry g{group_in, in_shape.Dim(2), in_shape.Dim(3), p.kernel,
                       p.kernel, p.stride, p.pad};
        const std::int64_t patch = g.PatchSize();
        const std::int64_t pixels = g.OutPixels();
        const std::int64_t in_plane = g.in_h * g.in_w;
        std::vector<float> columns(static_cast<std::size_t>(patch * pixels));
        std::vector<float> grad_columns(
            static_cast<std::size_t>(patch * pixels));
        std::vector<float> grad_group(
            static_cast<std::size_t>(group_in * in_plane));
        const std::span<const float> w = conv.Weights().Data();
        const std::span<const float> x = inputs[0]->Data();
        const std::span<const float> gout = grad_output.Data();
        std::span<float> gx = grad_input.Data();
        std::span<float> dw = grads->weights.Data();
        std::span<float> db = grads->bias.Data();
        for (std::int64_t img = 0; img < batch; ++img) {
          for (std::int64_t grp = 0; grp < groups; ++grp) {
            const std::int64_t in_off =
                (img * conv.InChannels() + grp * group_in) * in_plane;
            const std::int64_t out_off =
                (img * p.out_channels + grp * group_out) * pixels;
            const float* go = gout.data() + out_off;
            Im2Col(g, x.subspan(static_cast<std::size_t>(in_off),
                                static_cast<std::size_t>(group_in * in_plane)),
                   columns);
            GemmNTAccumulate(group_out, patch, pixels, go, columns.data(),
                             dw.data() + grp * group_out * patch);
            for (std::int64_t oc = 0; oc < group_out; ++oc) {
              float acc = 0.0f;
              const float* row = go + oc * pixels;
              for (std::int64_t px = 0; px < pixels; ++px) acc += row[px];
              db[static_cast<std::size_t>(grp * group_out + oc)] += acc;
            }
            GemmTN(patch, pixels, group_out,
                   w.data() + grp * group_out * patch, go,
                   grad_columns.data());
            Col2Im(g, grad_columns, grad_group);
            float* dst = gx.data() + in_off;
            for (std::size_t i = 0; i < grad_group.size(); ++i) {
              dst[i] = grad_group[i];
            }
          }
        }
      }
      std::vector<Tensor> result;
      result.push_back(std::move(grad_input));
      return result;
    }

    case nn::LayerKind::kFullyConnected: {
      CCPERF_CHECK(inputs.size() == 1, "fc arity");
      const auto& fc = static_cast<const nn::FcLayer&>(layer);
      CCPERF_CHECK(grads != nullptr &&
                       grads->weights.GetShape() == fc.Weights().GetShape(),
                   "gradient store mis-shaped for ", layer.Name());
      const Shape& in_shape = inputs[0]->GetShape();
      const std::int64_t batch = in_shape.Dim(0);
      const std::int64_t in_f = fc.InFeatures();
      const std::int64_t out_f = fc.OutFeatures();
      Tensor grad_input(in_shape);
      const std::span<const float> w = fc.Weights().Data();
      const std::span<const float> x = inputs[0]->Data();
      const std::span<const float> go = grad_output.Data();
      std::span<float> gx = grad_input.Data();
      std::span<float> dw = grads->weights.Data();
      std::span<float> db = grads->bias.Data();
      for (std::int64_t b = 0; b < batch; ++b) {
        const float* xb = x.data() + b * in_f;
        const float* gb = go.data() + b * out_f;
        float* gxb = gx.data() + b * in_f;
        std::fill(gxb, gxb + in_f, 0.0f);
        for (std::int64_t o = 0; o < out_f; ++o) {
          const float grad = gb[o];
          db[static_cast<std::size_t>(o)] += grad;
          if (grad == 0.0f) continue;
          float* dwrow = dw.data() + o * in_f;
          const float* wrow = w.data() + o * in_f;
          for (std::int64_t i = 0; i < in_f; ++i) {
            dwrow[i] += grad * xb[i];
            gxb[i] += grad * wrow[i];
          }
        }
      }
      std::vector<Tensor> result;
      result.push_back(std::move(grad_input));
      return result;
    }

    case nn::LayerKind::kReLU: {
      CCPERF_CHECK(inputs.size() == 1, "relu arity");
      Tensor grad_input(inputs[0]->GetShape());
      const auto out = output.Data();
      const auto go = grad_output.Data();
      auto gi = grad_input.Data();
      for (std::size_t i = 0; i < gi.size(); ++i) {
        gi[i] = out[i] > 0.0f ? go[i] : 0.0f;
      }
      std::vector<Tensor> result;
      result.push_back(std::move(grad_input));
      return result;
    }

    case nn::LayerKind::kDropout: {
      CCPERF_CHECK(inputs.size() == 1, "dropout arity");
      std::vector<Tensor> result;
      result.push_back(grad_output);
      return result;
    }

    case nn::LayerKind::kSoftmax: {
      // dL/dz_i = p_i * (g_i - sum_j g_j p_j) over the channel axis.
      CCPERF_CHECK(inputs.size() == 1, "softmax arity");
      const Shape& s = output.GetShape();
      const std::int64_t batch = s.Dim(0);
      const std::int64_t classes = s.Dim(1);
      Tensor grad_input(inputs[0]->GetShape());
      const auto p = output.Data();
      const auto g = grad_output.Data();
      auto gi = grad_input.Data();
      for (std::int64_t b = 0; b < batch; ++b) {
        const float* pb = p.data() + b * classes;
        const float* gb = g.data() + b * classes;
        float* gib = gi.data() + b * classes;
        float dot = 0.0f;
        for (std::int64_t c = 0; c < classes; ++c) dot += gb[c] * pb[c];
        for (std::int64_t c = 0; c < classes; ++c) {
          gib[c] = pb[c] * (gb[c] - dot);
        }
      }
      std::vector<Tensor> result;
      result.push_back(std::move(grad_input));
      return result;
    }

    case nn::LayerKind::kMaxPool:
    case nn::LayerKind::kAvgPool: {
      CCPERF_CHECK(inputs.size() == 1, "pool arity");
      const auto& pool = static_cast<const nn::PoolLayer&>(layer);
      const nn::PoolParams& pp = pool.Params();
      const Shape& in_shape = inputs[0]->GetShape();
      const Shape& out_shape = output.GetShape();
      const std::int64_t nc = in_shape.Dim(0) * in_shape.Dim(1);
      const std::int64_t in_h = in_shape.Dim(2);
      const std::int64_t in_w = in_shape.Dim(3);
      const std::int64_t out_h = out_shape.Dim(2);
      const std::int64_t out_w = out_shape.Dim(3);
      const bool is_max = layer.Kind() == nn::LayerKind::kMaxPool;
      Tensor grad_input(in_shape, 0.0f);
      const float* src = inputs[0]->Data().data();
      const float* go = grad_output.Data().data();
      float* gi = grad_input.Data().data();
      for (std::int64_t plane = 0; plane < nc; ++plane) {
        const float* in_p = src + plane * in_h * in_w;
        const float* go_p = go + plane * out_h * out_w;
        float* gi_p = gi + plane * in_h * in_w;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          const std::int64_t h0 =
              std::max<std::int64_t>(0, oh * pp.stride - pp.pad);
          const std::int64_t h1 =
              std::min(in_h, oh * pp.stride - pp.pad + pp.kernel);
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            const std::int64_t w0 =
                std::max<std::int64_t>(0, ow * pp.stride - pp.pad);
            const std::int64_t w1 =
                std::min(in_w, ow * pp.stride - pp.pad + pp.kernel);
            const float grad = go_p[oh * out_w + ow];
            if (grad == 0.0f || h1 <= h0 || w1 <= w0) continue;
            if (is_max) {
              // Route to the (first) argmax, matching forward's max.
              std::int64_t best_h = h0, best_w = w0;
              float best = -std::numeric_limits<float>::infinity();
              for (std::int64_t h = h0; h < h1; ++h) {
                for (std::int64_t ww = w0; ww < w1; ++ww) {
                  if (in_p[h * in_w + ww] > best) {
                    best = in_p[h * in_w + ww];
                    best_h = h;
                    best_w = ww;
                  }
                }
              }
              gi_p[best_h * in_w + best_w] += grad;
            } else {
              const float share =
                  grad / static_cast<float>((h1 - h0) * (w1 - w0));
              for (std::int64_t h = h0; h < h1; ++h) {
                for (std::int64_t ww = w0; ww < w1; ++ww) {
                  gi_p[h * in_w + ww] += share;
                }
              }
            }
          }
        }
      }
      std::vector<Tensor> result;
      result.push_back(std::move(grad_input));
      return result;
    }

    case nn::LayerKind::kLRN: {
      // y_i = x_i s_i^{-b} with s_i = k + (a/n) sum_{j in w(i)} x_j^2, so
      //   dx_j = s_j^{-b} g_j - (2ab/n) x_j sum_{i: j in w(i)} g_i x_i
      //          s_i^{-b-1}.
      CCPERF_CHECK(inputs.size() == 1, "lrn arity");
      const auto& lrn = static_cast<const nn::LrnLayer&>(layer);
      const nn::LrnParams& pp = lrn.Params();
      const Shape& s = inputs[0]->GetShape();
      const std::int64_t batch = s.Dim(0);
      const std::int64_t channels = s.Dim(1);
      const std::int64_t plane = s.Dim(2) * s.Dim(3);
      const std::int64_t half = pp.local_size / 2;
      const float alpha_over_n =
          pp.alpha / static_cast<float>(pp.local_size);
      Tensor grad_input(s);
      const float* x = inputs[0]->Data().data();
      const float* g = grad_output.Data().data();
      float* gx = grad_input.Data().data();
      std::vector<float> scale(static_cast<std::size_t>(channels));
      for (std::int64_t b = 0; b < batch; ++b) {
        const float* xb = x + b * channels * plane;
        const float* gb = g + b * channels * plane;
        float* gxb = gx + b * channels * plane;
        for (std::int64_t px = 0; px < plane; ++px) {
          for (std::int64_t c = 0; c < channels; ++c) {
            const std::int64_t c0 = std::max<std::int64_t>(0, c - half);
            const std::int64_t c1 = std::min(channels, c + half + 1);
            float ss = 0.0f;
            for (std::int64_t cc = c0; cc < c1; ++cc) {
              const float v = xb[cc * plane + px];
              ss += v * v;
            }
            scale[static_cast<std::size_t>(c)] = pp.k + alpha_over_n * ss;
          }
          for (std::int64_t j = 0; j < channels; ++j) {
            const std::int64_t i0 = std::max<std::int64_t>(0, j - half);
            const std::int64_t i1 = std::min(channels, j + half + 1);
            float cross = 0.0f;
            for (std::int64_t i = i0; i < i1; ++i) {
              const float si = scale[static_cast<std::size_t>(i)];
              cross += gb[i * plane + px] * xb[i * plane + px] *
                       std::pow(si, -pp.beta - 1.0f);
            }
            const float sj = scale[static_cast<std::size_t>(j)];
            gxb[j * plane + px] =
                std::pow(sj, -pp.beta) * gb[j * plane + px] -
                2.0f * alpha_over_n * pp.beta * xb[j * plane + px] * cross;
          }
        }
      }
      std::vector<Tensor> result;
      result.push_back(std::move(grad_input));
      return result;
    }

    case nn::LayerKind::kConcat: {
      CCPERF_CHECK(inputs.size() >= 2, "concat arity");
      const Shape& out_shape = output.GetShape();
      const std::int64_t batch = out_shape.Dim(0);
      const std::int64_t plane = out_shape.Dim(2) * out_shape.Dim(3);
      const std::int64_t out_chan = out_shape.Dim(1);
      std::vector<Tensor> result;
      std::int64_t chan_off = 0;
      for (const Tensor* in : inputs) {
        const std::int64_t c = in->GetShape().Dim(1);
        Tensor grad(in->GetShape());
        for (std::int64_t b = 0; b < batch; ++b) {
          const float* src = grad_output.Data().data() +
                             (b * out_chan + chan_off) * plane;
          float* dst = grad.Data().data() + b * c * plane;
          std::copy(src, src + c * plane, dst);
        }
        chan_off += c;
        result.push_back(std::move(grad));
      }
      return result;
    }

    default:
      CCPERF_CHECK(false, "layer '", layer.Name(), "' (",
                   nn::LayerKindName(layer.Kind()),
                   ") has no backward implementation");
  }
}

}  // namespace ccperf::train
