#include "train/trainer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "nn/activation_layers.h"

namespace ccperf::train {

SgdTrainer::SgdTrainer(nn::Network& net, TrainConfig config)
    : net_(net), config_(config) {
  CCPERF_CHECK(config_.learning_rate > 0.0f, "learning rate must be positive");
  CCPERF_CHECK(config_.momentum >= 0.0f && config_.momentum < 1.0f,
               "momentum must be in [0, 1)");
  CCPERF_CHECK(net_.LayerCount() > 0, "empty network");
  CCPERF_CHECK(net_.LayerAt(net_.LayerCount() - 1).Kind() ==
                   nn::LayerKind::kSoftmax,
               "trainer requires a softmax head, got ",
               net_.LayerAt(net_.LayerCount() - 1).Name());
  for (std::size_t i = 0; i < net_.LayerCount(); ++i) {
    const nn::Layer& layer = net_.LayerAt(i);
    CCPERF_CHECK(IsDifferentiable(layer), "layer '", layer.Name(),
                 "' is not differentiable");
    if (layer.HasWeights()) {
      LayerGrads v;
      v.weights = Tensor(layer.Weights().GetShape());
      v.bias = Tensor(layer.Bias().GetShape());
      velocity_[layer.Name()] = std::move(v);
    }
  }
}

double SgdTrainer::Step(const Tensor& images,
                        std::span<const std::int64_t> labels, bool update) {
  const std::int64_t batch = images.GetShape().Dim(0);
  CCPERF_CHECK(static_cast<std::int64_t>(labels.size()) == batch,
               "one label per image required");

  // Forward, retaining every activation.
  const std::size_t n = net_.LayerCount();
  std::vector<Tensor> outputs(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<const Tensor*> ins;
    for (auto idx : net_.NodeInputs(i)) {
      ins.push_back(idx < 0 ? &images
                            : &outputs[static_cast<std::size_t>(idx)]);
    }
    outputs[i] = net_.LayerAt(i).Forward(ins);
  }

  // Loss and fused softmax/cross-entropy gradient at the logits (the input
  // of the final softmax layer).
  const Tensor& probs = outputs[n - 1];
  const std::int64_t classes = probs.GetShape().Dim(1);
  double loss = 0.0;
  Tensor grad_logits(probs.GetShape());
  {
    const auto p = probs.Data();
    auto g = grad_logits.Data();
    const float inv_batch = 1.0f / static_cast<float>(batch);
    for (std::int64_t b = 0; b < batch; ++b) {
      const std::int64_t label = labels[static_cast<std::size_t>(b)];
      CCPERF_CHECK(label >= 0 && label < classes, "label out of range");
      const float* pb = p.data() + b * classes;
      float* gb = g.data() + b * classes;
      loss -= std::log(std::max(pb[label], 1e-12f));
      for (std::int64_t c = 0; c < classes; ++c) {
        gb[c] = (pb[c] - (c == label ? 1.0f : 0.0f)) * inv_batch;
      }
    }
    loss /= static_cast<double>(batch);
  }
  if (!update) return loss;

  // Backward in reverse topological order; gradients of shared activations
  // accumulate. The final softmax is skipped: grad_logits already applies.
  std::vector<Tensor> grad_of(n);
  std::vector<bool> has_grad(n, false);
  const auto& softmax_inputs = net_.NodeInputs(n - 1);
  CCPERF_CHECK(softmax_inputs.size() == 1 && softmax_inputs[0] >= 0,
               "softmax head must be fed by a layer");
  grad_of[static_cast<std::size_t>(softmax_inputs[0])] =
      std::move(grad_logits);
  has_grad[static_cast<std::size_t>(softmax_inputs[0])] = true;

  std::map<std::string, LayerGrads> grads;
  for (auto& [name, v] : velocity_) {
    LayerGrads zero;
    zero.weights = Tensor(v.weights.GetShape());
    zero.bias = Tensor(v.bias.GetShape());
    grads[name] = std::move(zero);
  }

  for (std::size_t i = n - 1; i-- > 0;) {
    if (!has_grad[i]) continue;  // not on a path to the loss
    const nn::Layer& layer = net_.LayerAt(i);
    std::vector<const Tensor*> ins;
    for (auto idx : net_.NodeInputs(i)) {
      ins.push_back(idx < 0 ? &images
                            : &outputs[static_cast<std::size_t>(idx)]);
    }
    LayerGrads* layer_grads =
        layer.HasWeights() ? &grads.at(layer.Name()) : nullptr;
    std::vector<Tensor> grad_inputs =
        BackwardLayer(layer, ins, outputs[i], grad_of[i], layer_grads);
    const auto& input_ids = net_.NodeInputs(i);
    CCPERF_CHECK(grad_inputs.size() == input_ids.size(),
                 "backward arity mismatch for ", layer.Name());
    for (std::size_t k = 0; k < input_ids.size(); ++k) {
      const auto idx = input_ids[k];
      if (idx < 0) continue;  // gradient w.r.t. the images is discarded
      auto& slot = grad_of[static_cast<std::size_t>(idx)];
      if (!has_grad[static_cast<std::size_t>(idx)]) {
        slot = std::move(grad_inputs[k]);
        has_grad[static_cast<std::size_t>(idx)] = true;
      } else {
        auto dst = slot.Data();
        const auto src = grad_inputs[k].Data();
        for (std::size_t e = 0; e < dst.size(); ++e) dst[e] += src[e];
      }
    }
    // This node's gradient is no longer needed.
    grad_of[i] = Tensor();
  }

  // Momentum SGD update. With preserve_sparsity, a weight that is exactly
  // zero is treated as pruned: it receives no update and no momentum.
  for (std::size_t i = 0; i < n; ++i) {
    nn::Layer& layer = net_.LayerAt(i);
    if (!layer.HasWeights()) continue;
    LayerGrads& g = grads.at(layer.Name());
    LayerGrads& v = velocity_.at(layer.Name());
    auto apply = [&](Tensor& param, Tensor& grad, Tensor& vel, bool masked) {
      auto pd = param.Data();
      auto gd = grad.Data();
      auto vd = vel.Data();
      for (std::size_t e = 0; e < pd.size(); ++e) {
        if (masked && config_.preserve_sparsity && pd[e] == 0.0f) {
          vd[e] = 0.0f;
          continue;
        }
        const float reg = config_.weight_decay * pd[e];
        vd[e] = config_.momentum * vd[e] -
                config_.learning_rate * (gd[e] + reg);
        pd[e] += vd[e];
      }
    };
    apply(layer.MutableWeights(), g.weights, v.weights, /*masked=*/true);
    apply(layer.MutableBias(), g.bias, v.bias, /*masked=*/false);
    layer.NotifyWeightsChanged();
  }
  return loss;
}

double SgdTrainer::TrainBatch(const Tensor& images,
                              std::span<const std::int64_t> labels) {
  return Step(images, labels, /*update=*/true);
}

double SgdTrainer::EvalLoss(const Tensor& images,
                            std::span<const std::int64_t> labels) const {
  // Step(update=false) does not mutate anything; const_cast keeps the
  // public API honest without duplicating the forward code.
  return const_cast<SgdTrainer*>(this)->Step(images, labels, false);
}

double SgdTrainer::Fit(const data::SyntheticImageDataset& dataset,
                       std::int64_t train_size, std::int64_t batch,
                       int epochs) {
  CCPERF_CHECK(train_size >= batch && batch >= 1 && epochs >= 1,
               "invalid training schedule");
  double epoch_loss = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    epoch_loss = 0.0;
    std::int64_t batches = 0;
    for (std::int64_t start = 0; start + batch <= train_size;
         start += batch) {
      const Tensor images = dataset.Batch(start, batch);
      const auto labels = dataset.BatchLabels(start, batch);
      epoch_loss += TrainBatch(images, labels);
      ++batches;
    }
    epoch_loss /= static_cast<double>(batches);
  }
  return epoch_loss;
}

double TopKAccuracy(const nn::Network& net,
                    const data::SyntheticImageDataset& dataset,
                    std::int64_t start, std::int64_t count, std::size_t k,
                    std::int64_t batch) {
  CCPERF_CHECK(count >= 1, "need at least one image");
  std::int64_t hits = 0;
  for (std::int64_t offset = 0; offset < count; offset += batch) {
    const std::int64_t n = std::min(batch, count - offset);
    const Tensor logits = net.Forward(dataset.Batch(start + offset, n));
    const auto topk = nn::TopK(logits, k);
    const auto labels = dataset.BatchLabels(start + offset, n);
    for (std::int64_t b = 0; b < n; ++b) {
      const auto& ranked = topk[static_cast<std::size_t>(b)];
      if (std::find(ranked.begin(), ranked.end(),
                    labels[static_cast<std::size_t>(b)]) != ranked.end()) {
        ++hits;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(count);
}

}  // namespace ccperf::train
